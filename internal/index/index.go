// Package index implements an inverted index over profile vectors, the
// "well-known indexing technique" the paper appeals to (Section 4.3) for
// making filtering cost sublinear in the number of profile vectors: instead
// of comparing an incoming document against every vector of every user, the
// index walks only the posting lists of the document's terms and
// accumulates dot products for the vectors that share at least one term.
//
// Profile vectors and document vectors are unit-normalized throughout the
// system, so the accumulated dot product IS the cosine similarity.
//
// Hot-path architecture (see DESIGN.md §7 and §12):
//
//   - Terms are interned to uint32 ids through a sharded dictionary
//     (internal/intern), so matching compares integers, never strings.
//   - Postings are sharded by term-id hash across independently locked
//     shards. Within a term, committed postings are impact-ordered
//     (descending weight), carved into fixed blocks with per-block
//     max-weight summaries, and their weights quantized to uint8 against a
//     per-term scale; recent inserts sit in an unsorted exact staged tail
//     until the list is hot enough to rebuild (hot/cold split). Removal
//     tombstones postings lazily (per-shard dead-slot sets) and each shard
//     compacts itself once tombstones exceed a fraction of its postings.
//   - Matching at θ > 0 prunes: terms are walked heaviest-document-weight
//     first and abandoned once the remaining terms' bounds cannot reach θ;
//     within a term, whole blocks are skipped once their block-max bound
//     proves no accumulator can cross θ. Survivors are
//     rescored exactly against the entry's own term/weight pairs, so
//     pruned results are identical to the brute-force scorer (§12 for the
//     invariants). SetPruning(false) is the escape hatch.
//   - Per-call score accumulators are dense slices indexed by entry slot,
//     drawn from a sync.Pool; a touched-list makes reset O(candidates).
//   - TopK sorts candidates by upper bound and keeps a min-heap of the
//     best per-user scores; once the heap is full its floor retires the
//     remaining candidates without rescoring them.
package index

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"mmprofile/internal/intern"
	"mmprofile/internal/metrics"
	"mmprofile/internal/topk"
	"mmprofile/internal/vsm"
)

// NumShards is the posting-shard count, exported for layout introspection
// (pubsub.Broker.Layout).
const NumShards = numShards

const (
	// numShards is the posting-shard count; a power of two so shardOf is a
	// multiply and a shift. 16 shards keep writer collisions rare without
	// bloating the per-index footprint.
	numShards = 16

	// compactMinStale and compactFraction gate shard compaction: a shard
	// rebuilds its lists once it holds more than compactMinStale tombstoned
	// postings and they exceed 1/compactFraction of its total.
	compactMinStale = 64
	compactFraction = 4

	// blockSize is the posting-block granularity: each committed run of
	// blockSize postings carries one max-weight summary byte, the unit of
	// skipping during pruned matches. 64 postings = 512B of (id, w) pairs,
	// a few cache lines, small enough that a skip decision is worth making.
	blockSize = 64

	// rebuildFraction gates merging a term's staged tail into its
	// impact-ordered committed body: rebuild once the tail holds at least
	// one block AND at least 1/rebuildFraction of the committed size, so
	// rebuild work stays amortized O(1) per insert. Lists below one block
	// never rebuild — they are the cold Zipf tail, scanned exactly.
	rebuildFraction = 4

	// slackBudget bounds, as a fraction of θ, the upper-bound slack a match
	// may absorb from skipped blocks (three quarters of the budget) and the
	// term-level cutoff (the remainder). Slack widens the candidate filter — every
	// touched slot within slackTotal of θ pays an exact rescore — so the
	// budget trades scan volume against rescore volume. Profile-vector
	// score distributions are strongly bimodal around realistic θ (real
	// matches score far above it, term-sharing noise far below), which
	// keeps the candidate set close to the true result set even at half
	// of θ; 0.5 sits well inside the flat part of that trade on the
	// evaluation corpus (see DESIGN.md §12).
	slackBudget = 0.5
)

// shardOf maps a term id to its posting shard (Fibonacci hashing, so the
// dictionary's own shard bits in the low end of the id do not bias the
// distribution).
func shardOf(term uint32) uint32 {
	return (term * 0x9E3779B1) >> (32 - 4) // log2(numShards) == 4
}

// termList is one term's postings: a committed body in impact order
// (descending weight) with quantized weights and per-block maxima, plus an
// unsorted exact staged tail of recent inserts.
//
// The bound invariants every reader may rely on (the property tests in
// prune_test.go pin them):
//
//	maxW    ≥ w for every live posting weight w in the list
//	qws[i]  · scale ≥ ws[i]        (quantization never under-estimates)
//	bmax[b] ≥ qws[i] for i in block b
//	ws, qws and bmax are non-increasing (impact order)
type termList struct {
	ids  []uint32  // committed: entry slots, impact-ordered
	ws   []float32 // committed: exact weights, aligned with ids
	qws  []uint8   // committed: ceil-quantized weights, aligned with ids
	bmax []uint8   // per-block max of qws (== block head, by impact order)

	sids []uint32  // staged tail: entry slots, insertion order
	sws  []float32 // staged tail: exact weights

	maxW  float32 // ≥ every weight in the list, committed or staged
	scale float32 // committed quantization scale; qw·scale ≥ w
}

// blocks returns the committed block count.
func (l *termList) blocks() int { return (len(l.ids) + blockSize - 1) / blockSize }

// refreshMaxW recomputes the list bound after postings were dropped. The
// committed body is impact-ordered so its head is its max.
func (l *termList) refreshMaxW() {
	var m float32
	if len(l.ws) > 0 {
		m = l.ws[0]
	}
	for _, w := range l.sws {
		if w > m {
			m = w
		}
	}
	l.maxW = m
}

// rebuild merges the staged tail into the committed body, restoring impact
// order, and requantizes. Caller holds the shard write lock.
func (l *termList) rebuild() {
	heapsortDesc(l.sws, l.sids)
	n := len(l.ids) + len(l.sids)
	ids := make([]uint32, 0, n)
	ws := make([]float32, 0, n)
	i, j := 0, 0
	for i < len(l.ids) && j < len(l.sids) {
		if l.ws[i] >= l.sws[j] {
			ids = append(ids, l.ids[i])
			ws = append(ws, l.ws[i])
			i++
		} else {
			ids = append(ids, l.sids[j])
			ws = append(ws, l.sws[j])
			j++
		}
	}
	ids = append(ids, l.ids[i:]...)
	ws = append(ws, l.ws[i:]...)
	ids = append(ids, l.sids[j:]...)
	ws = append(ws, l.sws[j:]...)
	l.ids, l.ws = ids, ws
	l.sids, l.sws = l.sids[:0], l.sws[:0]
	l.requantize()
}

// requantize derives scale, qws and bmax from the committed body. The scale
// is nudged up until 255·scale ≥ maxW in float64, and each quantum is the
// smallest q with q·scale ≥ w, so quantized bounds over-estimate — never
// under-estimate — every stored weight.
func (l *termList) requantize() {
	n := len(l.ids)
	if n == 0 {
		l.qws, l.bmax, l.scale = l.qws[:0], l.bmax[:0], 0
		l.refreshMaxW()
		return
	}
	maxw := l.ws[0]
	scale := maxw / 255
	if scale <= 0 || math.IsInf(float64(scale), 0) {
		// Degenerate weights (≤ 0 or overflow): a unit scale keeps the
		// over-estimate invariant through the bump loop below.
		scale = 1
	}
	for float64(255)*float64(scale) < float64(maxw) {
		scale = math.Nextafter32(scale, math.MaxFloat32)
	}
	l.scale = scale
	s64 := float64(scale)
	l.qws = grow(l.qws, n)
	for i, w := range l.ws {
		q := int(math.Ceil(float64(w) / s64))
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		for float64(q)*s64 < float64(w) && q < 255 {
			q++
		}
		l.qws[i] = uint8(q)
	}
	nb := (n + blockSize - 1) / blockSize
	l.bmax = grow(l.bmax, nb)
	for b := 0; b < nb; b++ {
		l.bmax[b] = l.qws[b*blockSize] // impact order: the block head is its max
	}
	l.refreshMaxW()
}

// shard is one independently locked slice of the posting space.
type shard struct {
	mu    sync.RWMutex
	lists map[uint32]*termList // term id → postings
	live  int                  // postings referencing live entries
	stale int                  // tombstoned postings awaiting compaction
	dead  map[uint32]bool      // entry slots whose postings here are stale
}

// termWeight is one (term, weight) coordinate of an indexed vector. Entries
// keep their own vector as a single []termWeight run — one allocation, one
// cache stream — because the pruned harvest rescores every candidate by
// walking it (rescoreDense) and pays the entry's memory locality directly.
type termWeight struct {
	t uint32
	w float32
}

// entrySlot is one indexed profile vector. tws holds the vector's own
// (term, weight) pairs sorted by ascending term id — rescoreDense sums in
// that order to stay bit-for-bit consistent with the sorted-merge rescore
// it replaced. Slots are recycled, but only after
// every shard holding the dead slot's stale postings has compacted them
// away — until then a stale posting can still accumulate score onto the
// slot, which harvest discards via the alive flag.
type entrySlot struct {
	user  string
	vec   int
	uid   uint32
	tws   []termWeight
	alive bool
}

// userInfo tracks one user's slots and dense user id (uids index the
// pooled best-per-user arrays during harvest).
type userInfo struct {
	uid   uint32
	slots map[int]uint32 // vector slot number → entry slot
}

// Match is one hit of a document against the index: the user's best-scoring
// profile vector and its similarity.
type Match struct {
	User  string
	Score float64
	// Vector is the slot of the user's best-matching profile vector.
	Vector int
}

// Index is a concurrent inverted index over profile vectors. Matching
// walks posting shards under per-shard read locks and consults the entry
// registry once per call; updates stage postings first and then flip entry
// liveness under the registry lock, so a concurrent Match observes a
// user's old vector set or the new one — never an empty in-between.
type Index struct {
	dict   *intern.Dict
	shards [numShards]shard

	mu       sync.RWMutex // registry: everything below
	entries  []entrySlot
	freeEnt  []uint32
	dying    map[uint32]int // dead slot → shards still holding stale postings
	byUser   map[string]*userInfo
	nextUID  uint32
	freeUID  []uint32
	liveVecs int
	// maxNorm over-estimates every live entry's vector norm (profile
	// vectors are unit-normalized, so it hovers at 1). It only grows —
	// removals leave it stale-high, which keeps the Cauchy–Schwarz
	// remaining-mass bound in accumulate an over-estimate, like maxW.
	maxNorm float64

	pool sync.Pool // *matcher

	// pruneOff disables threshold-aware skipping (SetPruning). Results are
	// identical either way — exact rescoring makes pruning lossless — so
	// the toggle exists for A/B benchmarking and as an escape hatch.
	pruneOff atomic.Bool

	// stats counts pruning work across all matches (PruneStats); always on,
	// flushed in one batch of atomic adds per match.
	stats pruneCounters

	// inst is nil until Instrument is called; instrumented paths check it
	// once and fall through at zero cost when monitoring is off.
	inst *instruments

	// termAttr is nil until AttributeTerms is called; when set, accumulate
	// offers each document term's postings-scanned delta so /topz can
	// answer "which terms make matching expensive" (DESIGN.md §16).
	termAttr *topk.Sketch[uint32]
}

// pruneCounters aggregates matcher work; see PruneStats.
type pruneCounters struct {
	postingsScanned atomic.Uint64
	blocksSkipped   atomic.Uint64
	termsPruned     atomic.Uint64
	candidates      atomic.Uint64
	rescores        atomic.Uint64
}

// PruneStats is a cumulative snapshot of matcher effort: how many postings
// every match so far actually read, how many whole blocks the θ-bound let
// it skip, how many document terms were cut off wholesale, and how many
// survivor candidates needed an exact rescore. The bench prune figure
// differences two snapshots around a probe batch.
type PruneStats struct {
	PostingsScanned uint64
	BlocksSkipped   uint64
	TermsPruned     uint64
	Candidates      uint64
	Rescores        uint64
}

// PruneStats returns the cumulative pruning counters.
func (ix *Index) PruneStats() PruneStats {
	return PruneStats{
		PostingsScanned: ix.stats.postingsScanned.Load(),
		BlocksSkipped:   ix.stats.blocksSkipped.Load(),
		TermsPruned:     ix.stats.termsPruned.Load(),
		Candidates:      ix.stats.candidates.Load(),
		Rescores:        ix.stats.rescores.Load(),
	}
}

// SetPruning toggles threshold-aware block skipping at runtime (the
// -prune=off escape hatch in mmserver/mmbench). Pruned and unpruned
// matching return identical results; only the work differs.
func (ix *Index) SetPruning(on bool) { ix.pruneOff.Store(!on) }

// PruningEnabled reports whether threshold-aware skipping is active.
func (ix *Index) PruningEnabled() bool { return !ix.pruneOff.Load() }

// instruments holds the index's metrics (DESIGN.md §8). All fields are
// nil-safe no-ops until Instrument wires them to a registry.
type instruments struct {
	matchLat        *metrics.Histogram
	compactions     *metrics.Counter
	compactLat      *metrics.Histogram
	postingsScanned *metrics.Counter
	blocksSkipped   *metrics.Counter
	termsPruned     *metrics.Counter
	rescores        *metrics.Counter
	quantErr        *metrics.Histogram
}

// Instrument registers the index's metrics with reg and starts recording.
// Call it before the index is shared across goroutines (the broker does so
// at construction). Self-timing covers Match and TopK; MatchDoc is left to
// its caller — the broker's publish path already brackets MatchDoc with
// its own clock reads and re-uses them via RecordMatchLatency, keeping the
// hot path at three time.Now calls total.
func (ix *Index) Instrument(reg *metrics.Registry) {
	ix.inst = &instruments{
		matchLat: reg.Histogram("mm_index_match_seconds",
			"Latency of matching one document through the inverted profile index (Match/TopK entry points)."),
		compactions: reg.Counter("mm_index_compactions_total",
			"Posting-shard compactions performed (tombstone garbage collection)."),
		compactLat: reg.Histogram("mm_index_compaction_seconds",
			"Duration of individual posting-shard compactions."),
		postingsScanned: reg.Counter("mm_index_postings_scanned_total",
			"Postings actually read while matching (pruning skips the rest)."),
		blocksSkipped: reg.Counter("mm_index_blocks_skipped_total",
			"Posting blocks skipped because their block-max bound could not reach the match threshold."),
		termsPruned: reg.Counter("mm_index_terms_pruned_total",
			"Document terms dropped wholesale because the remaining upper-bound mass could not reach the threshold."),
		rescores: reg.Counter("mm_index_rescores_total",
			"Candidate vectors exactly rescored after quantized upper-bound accumulation."),
		quantErr: reg.Histogram("mm_index_quantization_error",
			"Per-match maximum over-estimate of the quantized upper-bound score versus the exact rescored similarity."),
	}
	reg.GaugeFunc("mm_index_live_vectors",
		"Profile vectors currently live in the inverted index.",
		func() float64 {
			ix.mu.RLock()
			n := ix.liveVecs
			ix.mu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("mm_index_tombstone_ratio",
		"Fraction of postings that are tombstoned and awaiting compaction (0 = fully compact).",
		func() float64 {
			var live, stale int
			for i := range ix.shards {
				s := &ix.shards[i]
				s.mu.RLock()
				live += s.live
				stale += s.stale
				s.mu.RUnlock()
			}
			if live+stale == 0 {
				return 0
			}
			return float64(stale) / float64(live+stale)
		})
}

// AttributeTerms creates the per-term match-cost attribution dimension —
// key: document term, weight: postings scanned for that term — and
// registers it with reg. Term ids stay raw uint32 on the hot path; they
// resolve to strings through the dictionary only at snapshot time. Call
// before the index is shared across goroutines (the broker does so at
// construction), like Instrument.
func (ix *Index) AttributeTerms(reg *topk.Registry, capacity int) {
	ix.termAttr = topk.New[uint32]("term_postings_scanned",
		"Postings scanned while matching, by document term.",
		capacity, 0, topk.HashU32,
		func(id uint32) string { return ix.dict.String(id) })
	reg.Register(ix.termAttr)
}

// New returns an empty index with its own term dictionary.
func New() *Index {
	ix := &Index{
		dying:  make(map[uint32]int),
		byUser: make(map[string]*userInfo),
		dict:   intern.NewDict(),
	}
	for i := range ix.shards {
		ix.shards[i].lists = make(map[uint32]*termList)
		ix.shards[i].dead = make(map[uint32]bool)
	}
	ix.pool.New = func() any { return new(matcher) }
	return ix
}

// Dict exposes the index's term dictionary (shared with callers that want
// to pre-intern document vectors via NewDoc).
func (ix *Index) Dict() *intern.Dict { return ix.dict }

// ---------------------------------------------------------------------------
// Updates

// stagedVec is one profile vector prepared for insertion: interned terms
// sorted ascending (the order rescoreDense sums in), float32 weights, and
// the entry slot assigned during staging.
type stagedVec struct {
	vec     int
	termIDs []uint32
	ws      []float32
	slot    uint32
}

func (ix *Index) prepare(vec int, v vsm.Vector) stagedVec {
	sv := stagedVec{
		vec:     vec,
		termIDs: make([]uint32, len(v.Terms)),
		ws:      make([]float32, len(v.Terms)),
	}
	for i, t := range v.Terms {
		sv.termIDs[i] = ix.dict.Intern(t)
		sv.ws[i] = float32(v.Weights[i])
	}
	sortByIDAsc(sv.termIDs, sv.ws)
	return sv
}

// Upsert installs (or replaces) profile vector slot vec of the given user.
// A zero vector removes the slot.
func (ix *Index) Upsert(user string, vec int, v vsm.Vector) {
	if v.IsZero() {
		ix.Remove(user, vec)
		return
	}
	svs := []stagedVec{ix.prepare(vec, v)}
	ix.stage(user, svs)
	ix.insertPostings(svs)
	ix.commit(user, svs, false)
}

// SetUser replaces every vector of the user with the given set, the common
// operation after a feedback step reshapes a profile. The replacement is
// atomic with respect to Match: the new vectors' postings are staged
// first, then one registry commit retires the old entries and activates
// the new ones, so no concurrent Match can observe the user with zero
// vectors mid-update.
func (ix *Index) SetUser(user string, vecs []vsm.Vector) {
	svs := make([]stagedVec, 0, len(vecs))
	for i, v := range vecs {
		if v.IsZero() {
			continue
		}
		svs = append(svs, ix.prepare(i, v))
	}
	ix.stage(user, svs)
	ix.insertPostings(svs)
	ix.commit(user, svs, true)
}

// stage allocates not-yet-alive entry slots for the vectors.
func (ix *Index) stage(user string, svs []stagedVec) {
	if len(svs) == 0 {
		return
	}
	ix.mu.Lock()
	for i := range svs {
		var slot uint32
		if n := len(ix.freeEnt); n > 0 {
			slot = ix.freeEnt[n-1]
			ix.freeEnt = ix.freeEnt[:n-1]
		} else {
			slot = uint32(len(ix.entries))
			ix.entries = append(ix.entries, entrySlot{})
		}
		tws := make([]termWeight, len(svs[i].termIDs))
		for j, t := range svs[i].termIDs {
			tws[j] = termWeight{t: t, w: svs[i].ws[j]}
		}
		ix.entries[slot] = entrySlot{user: user, vec: svs[i].vec, tws: tws}
		svs[i].slot = slot
		var sumsq float64
		for _, w := range svs[i].ws {
			sumsq += float64(w) * float64(w)
		}
		// The 1e-6 bump absorbs float32 weights and summation rounding so
		// maxNorm·√Σdw² stays a true upper bound in accumulate.
		if norm := math.Sqrt(sumsq) * (1 + 1e-6); norm > ix.maxNorm {
			ix.maxNorm = norm
		}
	}
	ix.mu.Unlock()
}

// insertPostings appends the staged vectors' postings, one lock
// acquisition per affected shard. Inserts land in the term's staged tail;
// once the tail holds a block's worth and a rebuildFraction-th of the
// committed body, the list rebuilds into impact order there and then.
func (ix *Index) insertPostings(svs []stagedVec) {
	type ins struct {
		term uint32
		id   uint32
		w    float32
	}
	var work [numShards][]ins
	for _, sv := range svs {
		for i, t := range sv.termIDs {
			si := shardOf(t)
			work[si] = append(work[si], ins{term: t, id: sv.slot, w: sv.ws[i]})
		}
	}
	for si := range work {
		if len(work[si]) == 0 {
			continue
		}
		s := &ix.shards[si]
		s.mu.Lock()
		for _, w := range work[si] {
			l := s.lists[w.term]
			if l == nil {
				l = &termList{}
				s.lists[w.term] = l
			}
			l.sids = append(l.sids, w.id)
			l.sws = append(l.sws, w.w)
			if w.w > l.maxW {
				l.maxW = w.w
			}
			if len(l.sids) >= blockSize && len(l.sids)*rebuildFraction >= len(l.ids) {
				l.rebuild()
			}
		}
		s.live += len(work[si])
		s.mu.Unlock()
	}
}

// tombShard is the per-shard share of a retirement: which slots died and
// how many of their postings live in the shard.
type tombShard struct {
	slots []uint32
	count int
}

// commit activates the staged vectors and retires the slots they replace
// (every previous slot of the user when replaceAll is set, otherwise only
// same-numbered ones) in a single registry critical section.
func (ix *Index) commit(user string, svs []stagedVec, replaceAll bool) {
	ix.mu.Lock()
	ui := ix.byUser[user]
	if ui == nil {
		if len(svs) == 0 {
			ix.mu.Unlock()
			return
		}
		ui = &userInfo{uid: ix.allocUID(), slots: make(map[int]uint32, len(svs))}
		ix.byUser[user] = ui
	}
	var old []uint32
	if replaceAll {
		for _, slot := range ui.slots {
			old = append(old, slot)
		}
		ui.slots = make(map[int]uint32, len(svs))
	}
	for _, sv := range svs {
		if prev, ok := ui.slots[sv.vec]; ok {
			old = append(old, prev)
		}
		ui.slots[sv.vec] = sv.slot
		e := &ix.entries[sv.slot]
		e.uid = ui.uid
		e.alive = true
		ix.liveVecs++
	}
	tomb := ix.killLocked(old)
	if len(ui.slots) == 0 {
		ix.freeUID = append(ix.freeUID, ui.uid)
		delete(ix.byUser, user)
	}
	ix.mu.Unlock()
	ix.tombstone(tomb)
}

// Remove deletes one profile vector slot.
func (ix *Index) Remove(user string, vec int) {
	ix.mu.Lock()
	ui := ix.byUser[user]
	var tomb *[numShards]tombShard
	if ui != nil {
		if slot, ok := ui.slots[vec]; ok {
			delete(ui.slots, vec)
			tomb = ix.killLocked([]uint32{slot})
			if len(ui.slots) == 0 {
				ix.freeUID = append(ix.freeUID, ui.uid)
				delete(ix.byUser, user)
			}
		}
	}
	ix.mu.Unlock()
	ix.tombstone(tomb)
}

// RemoveUser deletes every vector of the user (unsubscribe).
func (ix *Index) RemoveUser(user string) {
	ix.mu.Lock()
	ui := ix.byUser[user]
	var tomb *[numShards]tombShard
	if ui != nil {
		slots := make([]uint32, 0, len(ui.slots))
		for _, slot := range ui.slots {
			slots = append(slots, slot)
		}
		tomb = ix.killLocked(slots)
		ix.freeUID = append(ix.freeUID, ui.uid)
		delete(ix.byUser, user)
	}
	ix.mu.Unlock()
	ix.tombstone(tomb)
}

func (ix *Index) allocUID() uint32 {
	if n := len(ix.freeUID); n > 0 {
		uid := ix.freeUID[n-1]
		ix.freeUID = ix.freeUID[:n-1]
		return uid
	}
	uid := ix.nextUID
	ix.nextUID++
	return uid
}

// killLocked marks slots dead and plans their tombstoning. Caller holds
// the registry write lock; the returned work is applied by tombstone()
// after the lock is released.
func (ix *Index) killLocked(slots []uint32) *[numShards]tombShard {
	if len(slots) == 0 {
		return nil
	}
	tomb := new([numShards]tombShard)
	for _, slot := range slots {
		e := &ix.entries[slot]
		seen := 0
		var touched [numShards]bool
		for _, p := range e.tws {
			si := shardOf(p.t)
			if !touched[si] {
				touched[si] = true
				seen++
				tomb[si].slots = append(tomb[si].slots, slot)
			}
			tomb[si].count++
		}
		if seen == 0 { // no postings to tombstone: reusable immediately
			ix.freeEnt = append(ix.freeEnt, slot)
		} else {
			ix.dying[slot] = seen
		}
		ix.liveVecs--
		ix.entries[slot] = entrySlot{} // drop term ids and user string
	}
	return tomb
}

// tombstone applies planned retirement to the posting shards, compacting
// any shard whose stale share crossed the threshold, and releases entry
// slots whose postings are fully gone.
func (ix *Index) tombstone(tomb *[numShards]tombShard) {
	if tomb == nil {
		return
	}
	var freed []uint32
	for si := range tomb {
		if len(tomb[si].slots) == 0 {
			continue
		}
		s := &ix.shards[si]
		s.mu.Lock()
		for _, slot := range tomb[si].slots {
			s.dead[slot] = true
		}
		s.stale += tomb[si].count
		s.live -= tomb[si].count
		if s.stale > compactMinStale && s.stale*compactFraction > s.stale+s.live {
			freed = append(freed, ix.compactShard(s)...)
		}
		s.mu.Unlock()
	}
	ix.release(freed)
}

// compactLocked rebuilds every posting list in the shard, dropping stale
// postings, and returns the slots whose postings are now gone from this
// shard. Filtering preserves impact order, so block maxima are re-sliced
// from the surviving block heads and the quantization scale stays valid.
// Caller holds the shard write lock.
func (s *shard) compactLocked() []uint32 {
	if len(s.dead) == 0 {
		return nil
	}
	for t, l := range s.lists {
		nc := 0
		for i, id := range l.ids {
			if !s.dead[id] {
				l.ids[nc] = id
				l.ws[nc] = l.ws[i]
				l.qws[nc] = l.qws[i]
				nc++
			}
		}
		changed := nc != len(l.ids)
		l.ids, l.ws, l.qws = l.ids[:nc], l.ws[:nc], l.qws[:nc]
		if changed {
			nb := (nc + blockSize - 1) / blockSize
			l.bmax = l.bmax[:nb]
			for b := 0; b < nb; b++ {
				l.bmax[b] = l.qws[b*blockSize]
			}
		}
		ns := 0
		for i, id := range l.sids {
			if !s.dead[id] {
				l.sids[ns] = id
				l.sws[ns] = l.sws[i]
				ns++
			}
		}
		changed = changed || ns != len(l.sids)
		l.sids, l.sws = l.sids[:ns], l.sws[:ns]
		if nc+ns == 0 {
			delete(s.lists, t)
			continue
		}
		if changed {
			l.refreshMaxW()
		}
	}
	freed := make([]uint32, 0, len(s.dead))
	for slot := range s.dead {
		freed = append(freed, slot)
	}
	s.dead = make(map[uint32]bool)
	s.stale = 0
	return freed
}

// release returns fully compacted dead slots to the free list.
func (ix *Index) release(freed []uint32) {
	if len(freed) == 0 {
		return
	}
	ix.mu.Lock()
	for _, slot := range freed {
		if ix.dying[slot]--; ix.dying[slot] <= 0 {
			delete(ix.dying, slot)
			ix.freeEnt = append(ix.freeEnt, slot)
		}
	}
	ix.mu.Unlock()
}

// Optimize merges every term's staged tail into its impact-ordered,
// quantized committed body, leaving no exact-scan-only postings behind.
// Background rebuilds keep staged tails amortized-small (≤ 1/rebuildFraction
// of each list), but a freshly loaded index can still carry ~10% of its
// postings in tails that pruned matches must scan exactly; a read-heavy
// deployment calls Optimize once after bulk loading to make the whole
// index block-max skippable. Safe (and pointless) to call repeatedly.
func (ix *Index) Optimize() {
	for si := range ix.shards {
		s := &ix.shards[si]
		s.mu.Lock()
		for _, l := range s.lists {
			if len(l.sids) > 0 {
				l.rebuild()
			}
		}
		s.mu.Unlock()
	}
}

// Compact eagerly rebuilds every dirty shard's posting lists, dropping all
// tombstones; clean shards (zero tombstones) are untouched and not counted.
// Updates trigger compaction automatically; Compact exists for callers
// that want exact statistics or minimal memory right now.
func (ix *Index) Compact() {
	var freed []uint32
	for si := range ix.shards {
		s := &ix.shards[si]
		s.mu.Lock()
		freed = append(freed, ix.compactShard(s)...)
		s.mu.Unlock()
	}
	ix.release(freed)
}

// compactShard runs one shard's compaction under its (already held) write
// lock, recording the compaction count and duration when instrumented.
// No-op shards (no tombstones) are not counted.
func (ix *Index) compactShard(s *shard) []uint32 {
	if len(s.dead) == 0 {
		return nil
	}
	var t0 time.Time
	if ix.inst != nil {
		t0 = time.Now()
	}
	freed := s.compactLocked()
	if ix.inst != nil {
		ix.inst.compactions.Inc()
		ix.inst.compactLat.ObserveSince(t0)
	}
	return freed
}

// ---------------------------------------------------------------------------
// Matching

// Doc is a document vector resolved against the index's term dictionary:
// terms the index has never seen are dropped (they cannot match), the rest
// carry their interned ids. NewDoc also precomputes the two orders the
// matcher wants — terms by descending document weight, and an ascending
// term-id view for exact rescoring — so scoring the same document several
// times re-derives neither.
type Doc struct {
	ids []uint32  // scan-order hint: descending document weight
	ws  []float64 // aligned with ids
	asc []uint32  // the same terms sorted by ascending id (rescore merge)
	aws []float64 // aligned with asc
}

// Len returns the number of document terms known to the index.
func (d Doc) Len() int { return len(d.ids) }

// NewDoc resolves a unit-normalized document vector against the term
// dictionary once and precomputes the matcher's two orders. The scan-order
// hint depends only on the document's own weights (heaviest first, the
// order that collapses the matcher's Cauchy–Schwarz tail bound fastest),
// so a Doc stays valid (and exact) across concurrent index updates — the
// matcher re-reads live term maxima for its pruning bounds.
func (ix *Index) NewDoc(v vsm.Vector) Doc {
	d := Doc{
		ids: make([]uint32, 0, len(v.Terms)),
		ws:  make([]float64, 0, len(v.Terms)),
	}
	for i, t := range v.Terms {
		if id, ok := ix.dict.Lookup(t); ok {
			d.ids = append(d.ids, id)
			d.ws = append(d.ws, v.Weights[i])
		}
	}
	d.asc = append([]uint32(nil), d.ids...)
	d.aws = append([]float64(nil), d.ws...)
	sortByIDAsc(d.asc, d.aws)
	sortTermsByWDesc(nil, d.ids, d.ws, nil)
	return d
}

// matcher is the pooled per-call scoring state: a dense accumulator over
// entry slots, a dense best-per-user table over uids, the touched lists
// that make resetting them O(candidates) instead of O(capacity), and the
// pruning scratch (term bounds, suffix sums, candidate and floor heaps).
type matcher struct {
	docIDs   []uint32
	docWs    []float64
	ascIDs   []uint32
	ascWs    []float64
	ubs      []float64
	nb       []int32
	suffix   []float64
	csr      []float64
	dense    []float64
	scores   []float64 // exact float64 accumulator (unpruned path)
	scores32 []float32 // upper-bound float32 accumulator (pruned path)
	touched  []uint32
	cands    []uint32
	candUB   []float64
	floor    []float64
	best     []float64
	bestAt   []uint32
	uids     []uint32
	stats    matchStats
}

// matchStats is one match's pruning effort, flushed to the index counters
// (and instruments, when wired) in a single batch after the locks drop.
type matchStats struct {
	postingsScanned int
	blocksSkipped   int
	termsPruned     int
	candidates      int
	rescores        int
	maxOver         float64
	rescored        bool
}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return append(make([]T, 0, n), make([]T, n)...)
	}
	return s[:n]
}

// Match scores the document against every indexed profile vector that
// shares a term with it and returns, per user, the best-scoring vector with
// score ≥ threshold, sorted by descending score (ties by user for
// determinism). doc must be unit-normalized, as all document vectors in
// this system are.
func (ix *Index) Match(doc vsm.Vector, threshold float64) []Match {
	var t0 time.Time
	if ix.inst != nil {
		t0 = time.Now()
	}
	m := ix.pool.Get().(*matcher)
	m.resolve(ix, doc)
	m.fillAsc()
	out := ix.matchInto(m, m.docIDs, m.docWs, m.ascIDs, m.ascWs, true, threshold)
	ix.pool.Put(m)
	sortMatches(out)
	if ix.inst != nil {
		ix.inst.matchLat.ObserveSince(t0)
	}
	return out
}

// MatchDoc is Match for a pre-resolved document. The Doc's precomputed
// hint order stands in for the live upper-bound sort (Docs are shared and
// must not be mutated), which trades at most a little pruning efficacy —
// never correctness — when term maxima drifted since NewDoc.
func (ix *Index) MatchDoc(d Doc, threshold float64) []Match {
	m := ix.pool.Get().(*matcher)
	out := ix.matchInto(m, d.ids, d.ws, d.asc, d.aws, false, threshold)
	ix.pool.Put(m)
	sortMatches(out)
	return out
}

// RecordMatchLatency feeds an externally timed MatchDoc call into
// mm_index_match_seconds. MatchDoc does not self-time (see Instrument);
// the broker brackets it with clock reads it needs anyway and hands them
// here, so the index's histogram still covers the hot path without extra
// time.Now calls. A non-zero trace links the observation to its trace as
// a per-bucket exemplar; pass 0 for unsampled requests (the common case —
// exemplars are only useful for traces that were actually captured).
func (ix *Index) RecordMatchLatency(start, end time.Time, trace uint64) {
	if ix.inst == nil {
		return
	}
	sec := end.Sub(start).Seconds()
	if trace != 0 {
		ix.inst.matchLat.ObserveExemplar(sec, trace)
		return
	}
	ix.inst.matchLat.Observe(sec)
}

// resolve looks every document term up in the dictionary, into the
// matcher's scratch slices.
func (m *matcher) resolve(ix *Index, doc vsm.Vector) {
	m.docIDs = m.docIDs[:0]
	m.docWs = m.docWs[:0]
	for i, t := range doc.Terms {
		if id, ok := ix.dict.Lookup(t); ok {
			m.docIDs = append(m.docIDs, id)
			m.docWs = append(m.docWs, doc.Weights[i])
		}
	}
}

// fillAsc derives the ascending term-id rescore view from the resolved doc.
func (m *matcher) fillAsc() {
	n := len(m.docIDs)
	m.ascIDs = grow(m.ascIDs, n)
	m.ascWs = grow(m.ascWs, n)
	copy(m.ascIDs, m.docIDs)
	copy(m.ascWs, m.docWs)
	sortByIDAsc(m.ascIDs, m.ascWs)
}

// matchInto runs accumulate + harvest under the registry read lock —
// freezing slot liveness across both phases — with per-shard read locks
// nested inside (registry→shard is the global lock order; no writer
// acquires the registry while holding a shard). Commits therefore appear
// atomic to a match: it scores either a user's old vector set or the new
// one, never a half-replaced mix or a vanished user. Postings inserted
// concurrently for staged slots are harmless: staged slots are not alive,
// and harvest discards them along with stale postings on dead slots.
func (ix *Index) matchInto(m *matcher, ids []uint32, ws []float64, ascIDs []uint32, ascWs []float64, canSort bool, threshold float64) []Match {
	prune := threshold > 0 && !ix.pruneOff.Load()
	ix.mu.RLock()
	slackTotal := ix.accumulate(m, ids, ws, canSort, threshold, prune)
	out := ix.harvestAll(m, ascIDs, ascWs, threshold, slackTotal, prune)
	ix.mu.RUnlock()
	m.flushStats(ix)
	return out
}

// accumulate walks posting lists term-at-a-time.
//
// With pruning off (or θ ≤ 0) every posting contributes its exact weight
// to the float64 accumulator m.scores (reset via m.touched) and the
// returned slack is 0.
//
// With pruning on, every scanned posting contributes its quantized upper
// bound to the dense float32 accumulator m.scores32 — unconditionally, no
// first-touch bookkeeping — and two skip levels bound what goes unscanned
// (DESIGN.md §12):
//
//  1. Block skip: a committed block whose bound bub = dw·bmax·scale fits
//     the remaining skip budget retires the whole rest of the list for one
//     charge of bub to slack — impact order makes the current block's max
//     bound every later posting, and a slot holds at most one posting per
//     term. This can fire at block 0, dropping an entire fat list.
//  2. Term cutoff: terms are walked heaviest-document-weight first (the
//     order that collapses the Cauchy–Schwarz branch of rest fastest, and
//     one that front-loads rare short-listed terms); once slack + rest(i)
//     fits the slack budget (slackBudget·θ) the remaining terms are
//     dropped whole.
//
// rest(i) is the tighter of two per-slot bounds on mass from terms [i, n):
// the upper-bound sum Σ ub, and Cauchy–Schwarz — √(Σ dw²) times maxNorm,
// since no entry holds more weight mass over those terms than its norm.
//
// The invariant is uniform: for EVERY slot, the mass its accumulator may
// be missing is ≤ slackTotal = slack + rest(stop) ≤ slackBudget·θ —
// skipped list tails are covered by their charged bub (one posting per
// slot per term) and cut terms by rest(stop). So the harvest sweep's
// candidate filter (score32 + slackTotal ≥ θ, minus a float32 rounding
// margin) admits a superset of the true result set, every candidate is
// exactly rescored in float64, and pruned output is bit-identical to
// Caller holds the registry read lock.
func (ix *Index) accumulate(m *matcher, ids []uint32, ws []float64, canSort bool, threshold float64, prune bool) (slackTotal float64) {
	nSlots := len(ix.entries)
	if prune {
		m.scores32 = grow(m.scores32, nSlots)
	} else {
		m.scores = grow(m.scores, nSlots)
	}
	m.touched = m.touched[:0]
	m.stats = matchStats{}

	n := len(ids)
	m.ubs = grow(m.ubs, n)
	m.nb = grow(m.nb, n)
	for i, t := range ids {
		s := &ix.shards[shardOf(t)]
		s.mu.RLock()
		var maxw float64
		var nb int32
		if l := s.lists[t]; l != nil {
			maxw = float64(l.maxW)
			nb = int32(l.blocks())
		}
		s.mu.RUnlock()
		m.ubs[i] = ws[i] * maxw
		m.nb[i] = nb
	}
	if prune && canSort {
		sortTermsByWDesc(m.ubs, ids, ws, m.nb)
	}
	m.suffix = grow(m.suffix, n+1)
	m.csr = grow(m.csr, n+1)
	m.suffix[n], m.csr[n] = 0, 0
	var sumsq float64
	maxNorm := ix.maxNorm
	for i := n - 1; i >= 0; i-- {
		m.suffix[i] = m.suffix[i+1] + m.ubs[i]
		sumsq += ws[i] * ws[i]
		m.csr[i] = maxNorm * math.Sqrt(sumsq)
	}
	rest := func(i int) float64 {
		if m.csr[i] < m.suffix[i] {
			return m.csr[i]
		}
		return m.suffix[i]
	}

	budget := slackBudget * threshold
	var slack float64
	scanned := 0
	stop := n
	for i, t := range ids {
		if prune && slack+rest(i) <= budget {
			stop = i
			break
		}
		dw := ws[i]
		scanBase := scanned
		s := &ix.shards[shardOf(t)]
		s.mu.RLock()
		l := s.lists[t]
		if l == nil {
			s.mu.RUnlock()
			continue
		}
		if !prune {
			// Staged ("hot") postings: few, exact, always scanned.
			for k, id := range l.sids {
				if int(id) >= nSlots {
					continue // slot staged after this match began
				}
				sc := m.scores[id]
				if sc == 0 {
					m.touched = append(m.touched, id)
				}
				m.scores[id] = sc + dw*float64(l.sws[k])
			}
			scanned += len(l.sids)
			for k, id := range l.ids {
				if int(id) >= nSlots {
					continue
				}
				sc := m.scores[id]
				if sc == 0 {
					m.touched = append(m.touched, id)
				}
				m.scores[id] = sc + dw*float64(l.ws[k])
			}
			scanned += len(l.ids)
			s.mu.RUnlock()
			ix.termAttr.Offer(t, float64(scanned-scanBase))
			continue
		}
		for k, id := range l.sids { // staged tail: exact, always scanned
			if int(id) >= nSlots {
				continue // slot staged after this match began
			}
			m.scores32[id] += float32(dw * float64(l.sws[k]))
		}
		scanned += len(l.sids)
		nc := len(l.ids)
		if nc == 0 {
			s.mu.RUnlock()
			ix.termAttr.Offer(t, float64(scanned-scanBase))
			continue
		}
		dws := dw * float64(l.scale) // folds the per-term dequantize scale
		dws32 := float32(dws)
		nb := l.blocks()
		lids, qws, bmax := l.ids, l.qws, l.bmax
		for b := 0; b < nb; b++ {
			bub := dws * float64(bmax[b])
			// Three quarters of the budget may go to block skips; the
			// remainder is reserved so the term cutoff can still fire.
			if slack+bub <= budget*0.75 {
				slack += bub
				m.stats.blocksSkipped += nb - b
				break
			}
			start, end := b*blockSize, (b+1)*blockSize
			if end > nc {
				end = nc
			}
			for k := start; k < end; k++ {
				id := lids[k]
				if int(id) >= nSlots {
					continue
				}
				m.scores32[id] += dws32 * float32(qws[k])
			}
			scanned += end - start
		}
		s.mu.RUnlock()
		ix.termAttr.Offer(t, float64(scanned-scanBase))
	}
	slackTotal = slack
	if stop < n {
		m.stats.termsPruned = n - stop
		for j := stop; j < n; j++ {
			m.stats.blocksSkipped += int(m.nb[j])
		}
		slackTotal += rest(stop)
	}
	m.stats.postingsScanned = scanned
	return slackTotal
}

// fillDense scatters the document's weights into a term-id-indexed scratch
// array so rescoreDense can look doc weights up in O(1) instead of merging
// two sorted sequences per candidate. Sized to the document's largest term
// id; entry terms beyond it cannot be doc terms (ascIDs is sorted) and
// contribute zero. clearDense undoes exactly the writes fillDense made,
// keeping the pooled array all-zero between calls.
func (m *matcher) fillDense(ascIDs []uint32, ascWs []float64) {
	n := len(ascIDs)
	if n == 0 {
		m.dense = m.dense[:0]
		return
	}
	m.dense = grow(m.dense, int(ascIDs[n-1])+1)
	for j, t := range ascIDs {
		m.dense[t] = ascWs[j]
	}
}

func (m *matcher) clearDense(ascIDs []uint32) {
	for _, t := range ascIDs {
		if int(t) < len(m.dense) {
			m.dense[t] = 0
		}
	}
}

// rescoreDense recomputes the exact similarity between an entry's own
// vector and the document. Walking the entry's ascending term ids and
// summing weight products in that order reproduces the sorted-merge
// rescore's float arithmetic bit-for-bit; the entry's single termWeight
// run keeps the walk one sequential cache stream.
func rescoreDense(e *entrySlot, dense []float64) float64 {
	var sum float64
	for _, p := range e.tws {
		if int(p.t) < len(dense) {
			sum += float64(p.w) * dense[p.t]
		}
	}
	return sum
}

// sweepCut is the pruned harvest's candidate filter: a slot survives when
// score32 + slackTotal ≥ θ·(1 − sweepMargin). The margin absorbs every
// float32 rounding the pruned accumulator admits — the per-term
// float32(dw·scale) fold and the float32 additions — whose combined
// relative error stays under (terms+3)·2⁻²³ ≈ 1.6e-5 for thousand-term
// documents, three orders of magnitude inside the margin. Candidates are
// exactly rescored in float64, so the margin only widens the candidate
// superset; it never changes output.
const sweepMargin = 1e-3

func sweepCut(threshold, slackTotal float64) float32 {
	return float32(threshold - slackTotal - sweepMargin*threshold)
}

// harvestAll reduces the accumulator to the best vector per user ≥ θ.
//
// Unpruned, it walks m.touched, resetting each touched float64 score and
// keeping exact scores ≥ θ. Pruned, it sweeps the dense float32 bound
// accumulator sequentially — at large slot counts nearly every slot was
// touched anyway, and one linear pass plus a bulk clear is far cheaper
// than a random-order touched walk — and exactly rescores the slots that
// survive sweepCut. Caller holds the registry read lock.
func (ix *Index) harvestAll(m *matcher, ascIDs []uint32, ascWs []float64, threshold float64, slackTotal float64, prune bool) []Match {
	m.best = grow(m.best, int(ix.nextUID))
	m.bestAt = grow(m.bestAt, int(ix.nextUID))
	m.uids = m.uids[:0]
	if prune {
		m.fillDense(ascIDs, ascWs)
		defer m.clearDense(ascIDs)
		cut := sweepCut(threshold, slackTotal)
		for slot, sc32 := range m.scores32 {
			if sc32 < cut {
				continue
			}
			e := &ix.entries[slot]
			if !e.alive {
				continue
			}
			m.stats.candidates++
			m.stats.rescores++
			m.stats.rescored = true
			ex := rescoreDense(e, m.dense)
			if over := float64(sc32) - ex; over > m.stats.maxOver {
				m.stats.maxOver = over
			}
			if ex < threshold {
				continue
			}
			m.record(ix, uint32(slot), ex)
		}
		clear(m.scores32)
	} else {
		for _, slot := range m.touched {
			sc := m.scores[slot]
			m.scores[slot] = 0
			if sc < threshold {
				continue
			}
			e := &ix.entries[slot]
			if !e.alive {
				continue
			}
			m.record(ix, slot, sc)
		}
	}
	out := make([]Match, 0, len(m.uids))
	for _, uid := range m.uids {
		e := &ix.entries[m.bestAt[uid]]
		out = append(out, Match{User: e.user, Score: m.best[uid], Vector: e.vec})
		m.best[uid] = 0
	}
	return out
}

// record folds one qualifying (slot, exact score) into the per-user bests.
func (m *matcher) record(ix *Index, slot uint32, sc float64) {
	e := &ix.entries[slot]
	uid := e.uid
	cur := m.best[uid]
	switch {
	case cur == 0:
		m.uids = append(m.uids, uid)
		fallthrough
	case sc > cur,
		sc == cur && e.vec < ix.entries[m.bestAt[uid]].vec:
		m.best[uid] = sc
		m.bestAt[uid] = slot
	}
}

// harvestTopK is harvestAll with the heap floor fed back into pruning:
// candidates are rescored in descending upper-bound order while a min-heap
// tracks the k best first-qualifying per-user scores; once full, its floor
// retires every candidate whose bound falls below it. The floor
// under-estimates the true kth-best user score (a user's best only
// improves after its first score), so no output-affecting candidate is
// dropped, and the per-user bests equal Match's for every emitted user —
// pinning TopK(θ,k) ≡ sort(Match(θ))[:k]. Caller holds the registry read
// lock; the caller sorts and truncates to k.
func (ix *Index) harvestTopK(m *matcher, ascIDs []uint32, ascWs []float64, threshold float64, k int, slackTotal float64, prune bool) []Match {
	m.cands = m.cands[:0]
	m.candUB = m.candUB[:0]
	if prune {
		cut := sweepCut(threshold, slackTotal)
		for slot, sc32 := range m.scores32 {
			if sc32 < cut {
				continue
			}
			if !ix.entries[slot].alive {
				continue
			}
			m.cands = append(m.cands, uint32(slot))
			// The upper bound mirrors sweepCut's margin so float32
			// rounding can't place a candidate's bound below its exact
			// score (the floor test depends on UB ≥ exact).
			m.candUB = append(m.candUB, float64(sc32)+slackTotal+sweepMargin*threshold)
		}
		clear(m.scores32)
	} else {
		for _, slot := range m.touched {
			sc := m.scores[slot]
			m.scores[slot] = 0
			if sc < threshold {
				continue
			}
			if !ix.entries[slot].alive {
				continue
			}
			m.cands = append(m.cands, slot)
			m.candUB = append(m.candUB, sc)
		}
	}
	heapsortDesc(m.candUB, m.cands)
	m.best = grow(m.best, int(ix.nextUID))
	m.bestAt = grow(m.bestAt, int(ix.nextUID))
	m.uids = m.uids[:0]
	m.floor = m.floor[:0]
	if prune {
		m.fillDense(ascIDs, ascWs)
		defer m.clearDense(ascIDs)
	}
	for ci, slot := range m.cands {
		if len(m.floor) == k && m.candUB[ci] < m.floor[0] {
			break // no remaining candidate can enter or reorder the top k
		}
		e := &ix.entries[slot]
		sc := m.candUB[ci]
		if prune {
			m.stats.candidates++
			m.stats.rescores++
			m.stats.rescored = true
			ex := rescoreDense(e, m.dense)
			if over := sc - slackTotal - ex; over > m.stats.maxOver {
				m.stats.maxOver = over
			}
			sc = ex
		}
		if sc < threshold {
			continue
		}
		uid := e.uid
		cur := m.best[uid]
		if cur == 0 {
			m.uids = append(m.uids, uid)
			m.best[uid] = sc
			m.bestAt[uid] = slot
			m.floor = floorPush(m.floor, sc, k)
		} else if sc > cur || (sc == cur && e.vec < ix.entries[m.bestAt[uid]].vec) {
			m.best[uid] = sc
			m.bestAt[uid] = slot
		}
	}
	out := make([]Match, 0, len(m.uids))
	for _, uid := range m.uids {
		e := &ix.entries[m.bestAt[uid]]
		out = append(out, Match{User: e.user, Score: m.best[uid], Vector: e.vec})
		m.best[uid] = 0
	}
	return out
}

// flushStats batches the match's pruning work into the index counters and,
// when instrumented, the exported metrics. Called after locks drop.
func (m *matcher) flushStats(ix *Index) {
	st := &m.stats
	if st.postingsScanned > 0 {
		ix.stats.postingsScanned.Add(uint64(st.postingsScanned))
	}
	if st.blocksSkipped > 0 {
		ix.stats.blocksSkipped.Add(uint64(st.blocksSkipped))
	}
	if st.termsPruned > 0 {
		ix.stats.termsPruned.Add(uint64(st.termsPruned))
	}
	if st.candidates > 0 {
		ix.stats.candidates.Add(uint64(st.candidates))
	}
	if st.rescores > 0 {
		ix.stats.rescores.Add(uint64(st.rescores))
	}
	inst := ix.inst
	if inst == nil {
		return
	}
	if st.postingsScanned > 0 {
		inst.postingsScanned.Add(int64(st.postingsScanned))
	}
	if st.blocksSkipped > 0 {
		inst.blocksSkipped.Add(int64(st.blocksSkipped))
	}
	if st.termsPruned > 0 {
		inst.termsPruned.Add(int64(st.termsPruned))
	}
	if st.rescores > 0 {
		inst.rescores.Add(int64(st.rescores))
	}
	if st.rescored {
		over := st.maxOver
		if over < 0 {
			over = 0
		}
		inst.quantErr.Observe(over)
	}
}

// matchLess is the result order: descending score, ties by user.
func matchLess(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.User < b.User
}

func sortMatches(out []Match) {
	// slices.SortFunc over sort.Slice: no reflection-based swaps, and the
	// match-set sort is a measurable slice of large-tier Match calls.
	slices.SortFunc(out, func(a, b Match) int {
		if matchLess(a, b) {
			return -1
		}
		if matchLess(b, a) {
			return 1
		}
		return 0
	})
}

// TopK returns the k best matches above the threshold. The accumulator
// pass prunes against θ like Match; the harvest pass then tightens the
// effective threshold as the per-user heap fills (see harvestTopK), so
// low-bound candidates are never rescored at all.
func (ix *Index) TopK(doc vsm.Vector, threshold float64, k int) []Match {
	if k <= 0 {
		return nil
	}
	var t0 time.Time
	if ix.inst != nil {
		t0 = time.Now()
		defer func() { ix.inst.matchLat.ObserveSince(t0) }()
	}
	m := ix.pool.Get().(*matcher)
	m.resolve(ix, doc)
	m.fillAsc()
	prune := threshold > 0 && !ix.pruneOff.Load()
	ix.mu.RLock()
	slackTotal := ix.accumulate(m, m.docIDs, m.docWs, true, threshold, prune)
	out := ix.harvestTopK(m, m.ascIDs, m.ascWs, threshold, k, slackTotal, prune)
	ix.mu.RUnlock()
	m.flushStats(ix)
	ix.pool.Put(m)
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ---------------------------------------------------------------------------
// Sorting scratch (closure-free so the match path stays allocation-free)

// sortByIDAsc insertion-sorts parallel (id, weight) arrays by ascending id.
// Inputs are vector-sized (≤ a few hundred terms).
func sortByIDAsc[W any](ids []uint32, ws []W) {
	for i := 1; i < len(ids); i++ {
		id, w := ids[i], ws[i]
		j := i - 1
		for j >= 0 && ids[j] > id {
			ids[j+1], ws[j+1] = ids[j], ws[j]
			j--
		}
		ids[j+1], ws[j+1] = id, w
	}
}

// sortTermsByWDesc insertion-sorts the parallel term arrays by descending
// document weight. The walk order exists to make rest(i) collapse as fast
// as possible, and the binding branch of rest is the Cauchy–Schwarz bound
// √(Σ tail dw²) — which decays fastest when the heaviest doc weights go
// first. High doc weights are high-idf (rare) terms with short posting
// lists, so this order also keeps the broad mint zone over cheap lists
// and leaves the fat common-term lists to the update/skip/cutoff levels.
// nb may be nil (NewDoc's hint ordering carries no counts).
func sortTermsByWDesc(ubs []float64, ids []uint32, ws []float64, nb []int32) {
	for i := 1; i < len(ws); i++ {
		id, w := ids[i], ws[i]
		var u float64
		if ubs != nil {
			u = ubs[i]
		}
		var b int32
		if nb != nil {
			b = nb[i]
		}
		j := i - 1
		for j >= 0 && ws[j] < w {
			ids[j+1], ws[j+1] = ids[j], ws[j]
			if ubs != nil {
				ubs[j+1] = ubs[j]
			}
			if nb != nil {
				nb[j+1] = nb[j]
			}
			j--
		}
		ids[j+1], ws[j+1] = id, w
		if ubs != nil {
			ubs[j+1] = u
		}
		if nb != nil {
			nb[j+1] = b
		}
	}
}

// heapsortDesc sorts parallel (key, value) arrays by descending key,
// in place and allocation-free (candidate sets can reach many thousands,
// too large for insertion sort).
func heapsortDesc[K float32 | float64](keys []K, vals []uint32) {
	n := len(keys)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMin(keys, vals, i, n)
	}
	for end := n - 1; end > 0; end-- {
		keys[0], keys[end] = keys[end], keys[0]
		vals[0], vals[end] = vals[end], vals[0]
		siftDownMin(keys, vals, 0, end)
	}
}

// siftDownMin restores the min-heap property at i over keys[:n].
func siftDownMin[K float32 | float64](keys []K, vals []uint32, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && keys[r] < keys[l] {
			small = r
		}
		if keys[small] >= keys[i] {
			return
		}
		keys[i], keys[small] = keys[small], keys[i]
		vals[i], vals[small] = vals[small], vals[i]
		i = small
	}
}

// floorPush feeds one first-qualifying user score into the bounded
// min-heap whose root is the TopK pruning floor.
func floorPush(h []float64, x float64, k int) []float64 {
	if len(h) < k {
		h = append(h, x)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p] <= h[i] {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		return h
	}
	if x > h[0] {
		h[0] = x
		i, n := 0, len(h)
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			small := l
			if r := l + 1; r < n && h[r] < h[l] {
				small = r
			}
			if h[small] >= h[i] {
				break
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
	}
	return h
}

// ---------------------------------------------------------------------------
// Statistics

// Stats reports index size for monitoring.
type Stats struct {
	Users    int
	Vectors  int
	Terms    int
	Postings int
}

// Size returns current index statistics. It compacts first so the term and
// posting counts reflect only live entries.
func (ix *Index) Size() Stats {
	ix.Compact()
	ix.mu.RLock()
	s := Stats{Users: len(ix.byUser), Vectors: ix.liveVecs}
	ix.mu.RUnlock()
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		s.Terms += len(sh.lists)
		s.Postings += sh.live
		sh.mu.RUnlock()
	}
	return s
}
