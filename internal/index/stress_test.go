package index

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"mmprofile/internal/vsm"
)

// randUnitVec draws a sparse vector over the given vocabulary and
// unit-normalizes it.
func randUnitVec(rng *rand.Rand, vocab []string, density float64) vsm.Vector {
	m := map[string]float64{}
	for _, t := range vocab {
		if rng.Float64() < density {
			m[t] = rng.Float64() + 0.01
		}
	}
	return vsm.FromMap(m).Normalized()
}

// bruteMatches replicates Match's contract directly on a map of profiles:
// best quantized dot per user, threshold applied, sorted by score descending
// with ties broken by user ascending.
func bruteMatches(profiles map[string][]vsm.Vector, doc vsm.Vector, threshold float64) []Match {
	var out []Match
	for user, vecs := range profiles {
		best, bestVec := 0.0, -1
		for i, pv := range vecs {
			if pv.IsZero() {
				continue
			}
			if s := vsm.Dot(quantize(pv), doc); s > best {
				best, bestVec = s, i
			}
		}
		if bestVec >= 0 && best >= threshold && best > 0 {
			out = append(out, Match{User: user, Vector: bestVec, Score: best})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].User < out[j].User
	})
	return out
}

// TestMatchPropertyEquivalence is the property test of the index rewrite:
// for random profile populations and random documents, Match must return
// exactly the users a brute-force scan returns, with identical ordering and
// scores equal to within 1e-9, and TopK must be a prefix of Match.
func TestMatchPropertyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%02d", i)
	}
	for round := 0; round < 10; round++ {
		ix := New()
		profiles := map[string][]vsm.Vector{}
		nUsers := 5 + rng.Intn(30)
		for u := 0; u < nUsers; u++ {
			user := fmt.Sprintf("u%02d", u)
			n := 1 + rng.Intn(3)
			vecs := make([]vsm.Vector, n)
			for v := range vecs {
				vecs[v] = randUnitVec(rng, vocab, 0.25)
			}
			profiles[user] = vecs
			ix.SetUser(user, vecs)
		}
		// Churn: replace some users, remove others, mirror in the reference.
		for u := 0; u < nUsers/3; u++ {
			user := fmt.Sprintf("u%02d", rng.Intn(nUsers))
			if rng.Intn(2) == 0 {
				vecs := []vsm.Vector{randUnitVec(rng, vocab, 0.25)}
				profiles[user] = vecs
				ix.SetUser(user, vecs)
			} else {
				delete(profiles, user)
				ix.RemoveUser(user)
			}
		}
		for trial := 0; trial < 20; trial++ {
			doc := randUnitVec(rng, vocab, 0.2)
			if doc.IsZero() {
				continue
			}
			threshold := rng.Float64() * 0.5
			got := ix.Match(doc, threshold)
			want := bruteMatches(profiles, doc, threshold)
			if len(got) != len(want) {
				t.Fatalf("round %d trial %d: %d matches, want %d", round, trial, len(got), len(want))
			}
			for i := range got {
				if got[i].User != want[i].User {
					t.Fatalf("round %d trial %d pos %d: user %s, want %s (ordering)",
						round, trial, i, got[i].User, want[i].User)
				}
				if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("round %d trial %d user %s: score %v, want %v",
						round, trial, got[i].User, got[i].Score, want[i].Score)
				}
			}
			k := 1 + rng.Intn(5)
			top := ix.TopK(doc, threshold, k)
			if len(top) != min(k, len(want)) {
				t.Fatalf("round %d trial %d: TopK(%d) returned %d of %d", round, trial, k, len(top), len(want))
			}
			for i := range top {
				if top[i].User != want[i].User || math.Abs(top[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("round %d trial %d: TopK[%d] = %+v, want %+v", round, trial, i, top[i], want[i])
				}
			}
		}
	}
}

// TestConcurrentStress exercises every mutating operation concurrently with
// matching — it exists to run under -race, and finishes with a consistency
// check of the surviving state against brute force.
func TestConcurrentStress(t *testing.T) {
	ix := New()
	vocab := make([]string, 25)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("s%02d", i)
	}
	const writers = 4
	const readers = 4
	const iters = 300

	// Each writer owns a disjoint set of users, so the final state is
	// deterministic per writer and can be reconstructed afterwards.
	finals := make([]map[string][]vsm.Vector, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			state := map[string][]vsm.Vector{}
			for i := 0; i < iters; i++ {
				user := fmt.Sprintf("w%d-u%d", w, rng.Intn(6))
				switch rng.Intn(4) {
				case 0: // SetUser with 1–3 vectors
					n := 1 + rng.Intn(3)
					vecs := make([]vsm.Vector, n)
					for v := range vecs {
						vecs[v] = randUnitVec(rng, vocab, 0.3)
					}
					state[user] = vecs
					ix.SetUser(user, vecs)
				case 1: // Upsert one slot
					pv := randUnitVec(rng, vocab, 0.3)
					slot := rng.Intn(3)
					cur := append([]vsm.Vector(nil), state[user]...)
					for len(cur) <= slot {
						cur = append(cur, vsm.Vector{})
					}
					cur[slot] = pv
					state[user] = cur
					ix.Upsert(user, slot, pv)
				case 2: // Remove one slot
					slot := rng.Intn(3)
					if cur := state[user]; slot < len(cur) {
						cur = append([]vsm.Vector(nil), cur...)
						cur[slot] = vsm.Vector{}
						state[user] = cur
					}
					ix.Remove(user, slot)
				case 3:
					delete(state, user)
					ix.RemoveUser(user)
				}
			}
			// Drop users whose every slot is zero — they are gone from the
			// index too.
			for user, vecs := range state {
				live := false
				for _, v := range vecs {
					if !v.IsZero() {
						live = true
					}
				}
				if !live {
					delete(state, user)
				}
			}
			finals[w] = state
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < iters; i++ {
				doc := randUnitVec(rng, vocab, 0.2)
				if doc.IsZero() {
					continue
				}
				for _, m := range ix.Match(doc, 0.1) {
					if m.Score < 0.1 || m.User == "" {
						t.Errorf("bad match under concurrency: %+v", m)
					}
				}
				if i%20 == 0 {
					ix.TopK(doc, 0, 3)
					ix.Size()
				}
				if i%50 == 0 {
					ix.Compact()
				}
			}
		}(r)
	}
	wg.Wait()

	// Final consistency: the settled index must agree with the union of the
	// writers' final states on every probe.
	profiles := map[string][]vsm.Vector{}
	for _, state := range finals {
		for user, vecs := range state {
			profiles[user] = vecs
		}
	}
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 30; trial++ {
		doc := randUnitVec(rng, vocab, 0.2)
		if doc.IsZero() {
			continue
		}
		got := ix.Match(doc, 0.2)
		want := bruteMatches(profiles, doc, 0.2)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d matches, want %d\n got=%+v\nwant=%+v", trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i].User != want[i].User || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("trial %d pos %d: %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
	st := ix.Size()
	if st.Users != len(profiles) {
		t.Errorf("Size.Users = %d, want %d", st.Users, len(profiles))
	}
}

// TestSetUserAtomicity checks the satellite fix directly: a reader matching
// while a writer flips a user between two equally-matching profiles must
// always see exactly one of them — never a window with the user absent.
func TestSetUserAtomicity(t *testing.T) {
	ix := New()
	a := []vsm.Vector{vec("cat", 1.0, "dog", 1.0)}
	b := []vsm.Vector{vec("cat", 1.0, "fish", 1.0)}
	ix.SetUser("alice", a)
	doc := vec("cat", 1.0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			if i%2 == 0 {
				ix.SetUser("alice", b)
			} else {
				ix.SetUser("alice", a)
			}
		}
	}()
	misses := 0
	for {
		select {
		case <-done:
			if misses > 0 {
				t.Fatalf("user vanished during SetUser %d times", misses)
			}
			return
		default:
			ms := ix.Match(doc, 0.5)
			if len(ms) != 1 || ms[0].User != "alice" {
				misses++
			}
		}
	}
}
