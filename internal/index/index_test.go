package index

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mmprofile/internal/vsm"
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

// quantize rounds a vector's weights through float32, mirroring what the
// index stores in its postings; reference scores for exact comparisons
// must apply the same rounding.
func quantize(v vsm.Vector) vsm.Vector {
	out := v.Clone()
	for i, w := range out.Weights {
		out.Weights[i] = float64(float32(w))
	}
	return out
}

func TestMatchBasic(t *testing.T) {
	ix := New()
	ix.Upsert("alice", 0, vec("cat", 1.0, "dog", 1.0))
	ix.Upsert("bob", 0, vec("stock", 1.0, "bond", 1.0))

	doc := vec("cat", 1.0)
	ms := ix.Match(doc, 0)
	if len(ms) != 1 || ms[0].User != "alice" {
		t.Fatalf("Match = %+v", ms)
	}
	want := vsm.Dot(quantize(vec("cat", 1.0, "dog", 1.0)), doc)
	if math.Abs(ms[0].Score-want) > 1e-9 {
		t.Errorf("score = %v, want cosine %v", ms[0].Score, want)
	}
}

func TestMatchPicksBestVectorPerUser(t *testing.T) {
	ix := New()
	ix.Upsert("alice", 0, vec("cat", 1.0))
	ix.Upsert("alice", 1, vec("cat", 1.0, "dog", 1.0, "bird", 1.0))
	doc := vec("cat", 1.0)
	ms := ix.Match(doc, 0)
	if len(ms) != 1 {
		t.Fatalf("expected one match per user, got %+v", ms)
	}
	if ms[0].Vector != 0 {
		t.Errorf("best vector = %d, want 0 (the exact match)", ms[0].Vector)
	}
	if math.Abs(ms[0].Score-1) > 1e-9 {
		t.Errorf("score = %v, want 1", ms[0].Score)
	}
}

func TestMatchThreshold(t *testing.T) {
	ix := New()
	ix.Upsert("alice", 0, vec("cat", 1.0, "dog", 1.0, "bird", 1.0, "fish", 1.0))
	doc := vec("cat", 1.0) // cosine = 0.5
	if got := ix.Match(doc, 0.6); len(got) != 0 {
		t.Errorf("threshold not applied: %+v", got)
	}
	if got := ix.Match(doc, 0.4); len(got) != 1 {
		t.Errorf("match below threshold lost: %+v", got)
	}
}

func TestMatchOrdering(t *testing.T) {
	ix := New()
	ix.Upsert("low", 0, vec("cat", 1.0, "a", 1.0, "b", 1.0, "c", 1.0))
	ix.Upsert("high", 0, vec("cat", 1.0))
	ms := ix.Match(vec("cat", 1.0), 0)
	if len(ms) != 2 || ms[0].User != "high" || ms[1].User != "low" {
		t.Errorf("ordering wrong: %+v", ms)
	}
}

func TestUpsertReplaces(t *testing.T) {
	ix := New()
	ix.Upsert("alice", 0, vec("cat", 1.0))
	ix.Upsert("alice", 0, vec("stock", 1.0))
	if got := ix.Match(vec("cat", 1.0), 0); len(got) != 0 {
		t.Errorf("stale postings: %+v", got)
	}
	if got := ix.Match(vec("stock", 1.0), 0); len(got) != 1 {
		t.Errorf("replacement missing: %+v", got)
	}
	st := ix.Size()
	if st.Vectors != 1 || st.Users != 1 {
		t.Errorf("Size = %+v", st)
	}
}

func TestUpsertZeroRemoves(t *testing.T) {
	ix := New()
	ix.Upsert("alice", 0, vec("cat", 1.0))
	ix.Upsert("alice", 0, vsm.Vector{})
	if st := ix.Size(); st.Vectors != 0 || st.Users != 0 || st.Terms != 0 {
		t.Errorf("Size after zero upsert = %+v", st)
	}
}

func TestRemoveAndRemoveUser(t *testing.T) {
	ix := New()
	ix.Upsert("alice", 0, vec("cat", 1.0))
	ix.Upsert("alice", 1, vec("dog", 1.0))
	ix.Upsert("bob", 0, vec("cat", 1.0))

	ix.Remove("alice", 0)
	ms := ix.Match(vec("cat", 1.0), 0)
	if len(ms) != 1 || ms[0].User != "bob" {
		t.Errorf("Remove left stale match: %+v", ms)
	}
	ix.RemoveUser("alice")
	if got := ix.Match(vec("dog", 1.0), 0); len(got) != 0 {
		t.Errorf("RemoveUser left matches: %+v", got)
	}
	if st := ix.Size(); st.Users != 1 || st.Vectors != 1 {
		t.Errorf("Size = %+v", st)
	}
	// Removing the unknown is a no-op.
	ix.Remove("nobody", 3)
	ix.RemoveUser("nobody")
}

func TestSetUser(t *testing.T) {
	ix := New()
	ix.SetUser("alice", []vsm.Vector{vec("cat", 1.0), vec("dog", 1.0)})
	if st := ix.Size(); st.Vectors != 2 {
		t.Fatalf("Size = %+v", st)
	}
	ix.SetUser("alice", []vsm.Vector{vec("stock", 1.0)})
	if got := ix.Match(vec("cat", 1.0), 0); len(got) != 0 {
		t.Errorf("SetUser left stale vectors: %+v", got)
	}
	if got := ix.Match(vec("stock", 1.0), 0); len(got) != 1 {
		t.Errorf("SetUser vectors missing: %+v", got)
	}
}

func TestTopK(t *testing.T) {
	ix := New()
	for i := 0; i < 10; i++ {
		// Each user shares "cat" plus i distinct filler terms, so scores
		// strictly decrease with i.
		pairs := []any{"cat", 1.0}
		for j := 0; j < i; j++ {
			pairs = append(pairs, fmt.Sprintf("filler%d_%d", i, j), 1.0)
		}
		ix.Upsert(fmt.Sprintf("user%d", i), 0, vec(pairs...))
	}
	ms := ix.TopK(vec("cat", 1.0), 0, 3)
	if len(ms) != 3 {
		t.Fatalf("TopK returned %d", len(ms))
	}
	if ms[0].User != "user0" {
		t.Errorf("TopK[0] = %+v", ms[0])
	}
}

// TestMatchAgainstBruteForce cross-checks the index against direct cosine
// computation on random data.
func TestMatchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	terms := make([]string, 30)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%02d", i)
	}
	randVec := func() vsm.Vector {
		m := map[string]float64{}
		for _, tm := range terms {
			if rng.Float64() < 0.3 {
				m[tm] = rng.Float64() + 0.01
			}
		}
		return vsm.FromMap(m).Normalized()
	}
	ix := New()
	profiles := map[string][]vsm.Vector{}
	for u := 0; u < 20; u++ {
		user := fmt.Sprintf("u%02d", u)
		n := 1 + rng.Intn(4)
		for v := 0; v < n; v++ {
			pv := randVec()
			profiles[user] = append(profiles[user], pv)
			ix.Upsert(user, v, pv)
		}
	}
	for trial := 0; trial < 50; trial++ {
		doc := randVec()
		if doc.IsZero() {
			continue
		}
		got := ix.Match(doc, 0.25)
		want := map[string]float64{}
		for user, vecs := range profiles {
			best := 0.0
			for _, pv := range vecs {
				if s := vsm.Dot(quantize(pv), doc); s > best {
					best = s
				}
			}
			if best >= 0.25 {
				want[user] = best
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d matches, want %d", trial, len(got), len(want))
		}
		for _, m := range got {
			if w, ok := want[m.User]; !ok || math.Abs(w-m.Score) > 1e-9 {
				t.Fatalf("trial %d: user %s score %v, want %v", trial, m.User, m.Score, w)
			}
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", g)
			for i := 0; i < 200; i++ {
				ix.Upsert(user, i%3, vec("cat", 1.0, fmt.Sprintf("t%d", i%7), 0.5))
				ix.Match(vec("cat", 1.0), 0.1)
				if i%50 == 0 {
					ix.Size()
				}
			}
		}(g)
	}
	wg.Wait()
	if st := ix.Size(); st.Users != 8 {
		t.Errorf("Size after concurrent writes = %+v", st)
	}
}

func TestPostingCleanup(t *testing.T) {
	ix := New()
	ix.Upsert("a", 0, vec("unique", 1.0))
	ix.Remove("a", 0)
	if st := ix.Size(); st.Terms != 0 || st.Postings != 0 {
		t.Errorf("postings leaked: %+v", st)
	}
}
