package index_test

import (
	"fmt"

	"mmprofile/internal/index"
	"mmprofile/internal/vsm"
)

// Example indexes two users' profile vectors and matches a document: only
// posting lists of the document's terms are touched, and each user gets
// her single best score.
func Example() {
	ix := index.New()
	unit := func(m map[string]float64) vsm.Vector { return vsm.FromMap(m).Normalized() }
	ix.Upsert("alice", 0, unit(map[string]float64{"cat": 1, "dog": 1}))
	ix.Upsert("alice", 1, unit(map[string]float64{"guitar": 1}))
	ix.Upsert("bob", 0, unit(map[string]float64{"stock": 1, "bond": 1}))

	doc := unit(map[string]float64{"cat": 1, "toy": 0.3})
	for _, m := range ix.Match(doc, 0.2) {
		fmt.Printf("%s matched via vector %d (score %.2f)\n", m.User, m.Vector, m.Score)
	}
	fmt.Printf("index holds %d vectors over %d terms\n", ix.Size().Vectors, ix.Size().Terms)
	// Output:
	// alice matched via vector 0 (score 0.68)
	// index holds 3 vectors over 5 terms
}
