package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Errors the simulator injects or synthesizes.
var (
	// ErrCrashed is returned by every operation after a simulated power
	// cut (Fault.Crash), and by operations on handles that predate a
	// Reboot.
	ErrCrashed = errors.New("faultfs: simulated crash")
	// ErrInjected is the default error for Fault{Err: ...} injections.
	ErrInjected = errors.New("faultfs: injected fault")
	// ErrNoSpace simulates ENOSPC.
	ErrNoSpace = errors.New("faultfs: no space left on device")
)

// OpKind names the syscall-boundary operation classes the simulator
// intercepts. Read-only operations are not fault points: a crash at a read
// is indistinguishable from a crash at the next mutation.
type OpKind string

const (
	OpCreate   OpKind = "create"   // OpenFile with O_CREATE on a missing file, CreateTemp
	OpWrite    OpKind = "write"    // File.Write
	OpSync     OpKind = "sync"     // File.Sync
	OpSyncDir  OpKind = "syncdir"  // FS.SyncDir
	OpRename   OpKind = "rename"   // FS.Rename
	OpRemove   OpKind = "remove"   // FS.Remove
	OpTruncate OpKind = "truncate" // File.Truncate
	OpMkdir    OpKind = "mkdir"    // FS.MkdirAll
)

// Op describes one mutating operation about to execute.
type Op struct {
	N    int    // 1-based global operation index
	Kind OpKind
	Path string
	Len  int // byte count for writes, 0 otherwise
}

// Fault is a hook's verdict for one operation.
type Fault struct {
	// Err fails the operation with this error. For writes, Partial bytes
	// are applied first (a short write).
	Err error
	// Partial is how many leading bytes of a write take effect before the
	// failure or crash — a torn write.
	Partial int
	// Crash power-cuts the process at this operation: the op (beyond
	// Partial, for writes) does not happen, it returns ErrCrashed, and
	// every later operation fails with ErrCrashed until Reboot.
	Crash bool
	// LieSync makes a sync/syncdir report success while persisting
	// nothing — a drive that acknowledges before hitting platters.
	LieSync bool
}

// Hook inspects each mutating operation and may inject a fault. Called
// with the simulator's lock held; it must not call back into the Sim.
type Hook func(Op) Fault

// CrashAt returns a hook that tears the n-th operation: a write applies
// half its bytes, anything else doesn't happen, and the simulated machine
// is dead until Reboot. This is the crash-matrix workhorse.
func CrashAt(n int) Hook {
	return func(op Op) Fault {
		if op.N != n {
			return Fault{}
		}
		return Fault{Crash: true, Partial: op.Len / 2}
	}
}

// ErrAt returns a hook failing the n-th operation with err (short-writing
// partial bytes if it is a write); the simulated machine keeps running.
func ErrAt(n int, err error, partial int) Hook {
	return func(op Op) Fault {
		if op.N != n {
			return Fault{}
		}
		return Fault{Err: err, Partial: partial}
	}
}

// simFile is one inode: volatile contents (the page cache) plus the
// durable image as of the last acknowledged fsync.
type simFile struct {
	data    []byte
	durable []byte
}

// simDir is one directory: the live entry table plus the durable entry
// table as of the last acknowledged directory fsync. Entries map base
// names to inodes; an inode can be reachable from a durable entry under
// one name and a volatile entry under another (mid-rename).
type simDir struct {
	entries map[string]*simFile
	durable map[string]*simFile
}

// Sim is an in-memory filesystem with explicit durability: writes land in
// the volatile image until File.Sync, namespace changes land in the
// volatile directory table until SyncDir, and Crash/Reboot discard
// everything volatile. Safe for concurrent use.
type Sim struct {
	mu      sync.Mutex
	hook    Hook
	ops     int
	crashed bool
	epoch   int // bumped by Reboot; stale handles die
	tmpSeq  int
	dirs    map[string]*simDir
}

// NewSim returns an empty simulated filesystem with no faults armed.
func NewSim() *Sim {
	return &Sim{dirs: map[string]*simDir{}}
}

// SetHook arms (or, with nil, disarms) the fault hook.
func (s *Sim) SetHook(h Hook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// Ops returns how many mutating operations have executed (including the
// one that crashed, excluding operations refused post-crash).
func (s *Sim) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Crashed reports whether a Fault.Crash has fired since the last Reboot.
func (s *Sim) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Reboot models power-on after a crash (or a clean reboot): every file
// reverts to its durable image, every directory to its durable entry
// table, all pre-reboot handles become invalid, and the machine runs
// again. The operation counter and hook are preserved so callers can keep
// counting across incarnations; most tests disarm the hook first.
func (s *Sim) Reboot() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = false
	s.epoch++
	for _, d := range s.dirs {
		d.entries = make(map[string]*simFile, len(d.durable))
		for name, f := range d.durable {
			d.entries[name] = f
			f.data = append([]byte(nil), f.durable...)
		}
	}
}

// step counts a mutating operation and applies the hook's verdict.
// Returns the fault to apply and an error that, when non-nil, must abort
// the operation (after the write's Partial bytes). Caller holds s.mu.
func (s *Sim) step(kind OpKind, path string, n int) (Fault, error) {
	if s.crashed {
		return Fault{}, ErrCrashed
	}
	s.ops++
	if s.hook == nil {
		return Fault{}, nil
	}
	f := s.hook(Op{N: s.ops, Kind: kind, Path: path, Len: n})
	if f.Crash {
		s.crashed = true
		return f, ErrCrashed
	}
	if f.Err != nil {
		return f, f.Err
	}
	return f, nil
}

func (s *Sim) dir(path string) *simDir {
	d, ok := s.dirs[filepath.Clean(path)]
	if !ok {
		return nil
	}
	return d
}

// lookup resolves a file path to its directory table and base name.
func (s *Sim) lookup(name string) (*simDir, string, *simFile) {
	d := s.dir(filepath.Dir(name))
	if d == nil {
		return nil, "", nil
	}
	base := filepath.Base(name)
	return d, base, d.entries[base]
}

func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}

// --- FS interface ---

func (s *Sim) MkdirAll(path string, perm fs.FileMode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	clean := filepath.Clean(path)
	if s.dirs[clean] != nil {
		if s.crashed {
			return ErrCrashed
		}
		return nil // exists: os.MkdirAll is a no-op, not a mutation
	}
	if _, err := s.step(OpMkdir, clean, 0); err != nil {
		return err
	}
	// Directory creation is modeled as immediately durable: the store
	// creates its directory once at first boot and the interesting crash
	// surface is entirely inside it.
	s.dirs[clean] = &simDir{entries: map[string]*simFile{}, durable: map[string]*simFile{}}
	return nil
}

func (s *Sim) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	d, base, f := s.lookup(name)
	if d == nil {
		return nil, notExist("open", name)
	}
	switch {
	case f == nil && flag&os.O_CREATE == 0:
		return nil, notExist("open", name)
	case f == nil:
		if _, err := s.step(OpCreate, name, 0); err != nil {
			return nil, err
		}
		f = &simFile{}
		d.entries[base] = f
	case flag&os.O_TRUNC != 0:
		if _, err := s.step(OpTruncate, name, 0); err != nil {
			return nil, err
		}
		f.data = nil
	}
	return &simHandle{sim: s, file: f, name: name, epoch: s.epoch, app: flag&os.O_APPEND != 0}, nil
}

func (s *Sim) CreateTemp(dir, pattern string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	d := s.dir(dir)
	if d == nil {
		return nil, notExist("createtemp", dir)
	}
	s.tmpSeq++
	// os.CreateTemp semantics: the last '*' in the pattern is replaced by
	// the unique suffix (deterministic here, for reproducible matrices).
	base := pattern + strconv.Itoa(s.tmpSeq)
	if j := strings.LastIndexByte(pattern, '*'); j >= 0 {
		base = pattern[:j] + strconv.Itoa(s.tmpSeq) + pattern[j+1:]
	}
	name := filepath.Join(dir, base)
	if _, err := s.step(OpCreate, name, 0); err != nil {
		return nil, err
	}
	f := &simFile{}
	d.entries[base] = f
	return &simHandle{sim: s, file: f, name: name, epoch: s.epoch}, nil
}

func (s *Sim) ReadFile(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	_, _, f := s.lookup(name)
	if f == nil {
		return nil, notExist("open", name)
	}
	return append([]byte(nil), f.data...), nil
}

func (s *Sim) ReadDir(name string) ([]fs.DirEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	d := s.dir(name)
	if d == nil {
		return nil, notExist("open", name)
	}
	names := make([]string, 0, len(d.entries))
	for n := range d.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]fs.DirEntry, len(names))
	for i, n := range names {
		out[i] = simDirEntry{name: n, size: int64(len(d.entries[n].data))}
	}
	return out, nil
}

func (s *Sim) Rename(oldpath, newpath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	od, obase, f := s.lookup(oldpath)
	nd := s.dir(filepath.Dir(newpath))
	if s.crashed {
		return ErrCrashed
	}
	if f == nil || nd == nil {
		return notExist("rename", oldpath)
	}
	if _, err := s.step(OpRename, newpath, 0); err != nil {
		return err
	}
	delete(od.entries, obase)
	nd.entries[filepath.Base(newpath)] = f
	return nil
}

func (s *Sim) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, base, f := s.lookup(name)
	if s.crashed {
		return ErrCrashed
	}
	if f == nil {
		return notExist("remove", name)
	}
	if _, err := s.step(OpRemove, name, 0); err != nil {
		return err
	}
	delete(d.entries, base)
	return nil
}

func (s *Sim) SyncDir(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dir(dir)
	if s.crashed {
		return ErrCrashed
	}
	if d == nil {
		return notExist("syncdir", dir)
	}
	f, err := s.step(OpSyncDir, dir, 0)
	if err != nil {
		return err
	}
	if f.LieSync {
		return nil
	}
	d.durable = make(map[string]*simFile, len(d.entries))
	for n, file := range d.entries {
		d.durable[n] = file
	}
	return nil
}

// --- File handle ---

type simHandle struct {
	sim    *Sim
	file   *simFile
	name   string
	epoch  int
	app    bool
	off    int64
	closed bool
}

func (h *simHandle) check() error {
	if h.sim.crashed || h.epoch != h.sim.epoch {
		return ErrCrashed
	}
	if h.closed {
		return fs.ErrClosed
	}
	return nil
}

func (h *simHandle) Write(p []byte) (int, error) {
	h.sim.mu.Lock()
	defer h.sim.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	f, err := h.sim.step(OpWrite, h.name, len(p))
	apply := p
	if err != nil {
		if f.Partial > len(p) {
			f.Partial = len(p)
		}
		apply = p[:f.Partial]
	}
	if h.app {
		h.off = int64(len(h.file.data))
	}
	end := h.off + int64(len(apply))
	for int64(len(h.file.data)) < end {
		h.file.data = append(h.file.data, 0)
	}
	copy(h.file.data[h.off:end], apply)
	h.off = end
	if err != nil {
		return len(apply), err
	}
	return len(p), nil
}

func (h *simHandle) Sync() error {
	h.sim.mu.Lock()
	defer h.sim.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	f, err := h.sim.step(OpSync, h.name, 0)
	if err != nil {
		return err
	}
	if f.LieSync {
		return nil
	}
	h.file.durable = append([]byte(nil), h.file.data...)
	return nil
}

func (h *simHandle) Truncate(size int64) error {
	h.sim.mu.Lock()
	defer h.sim.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if _, err := h.sim.step(OpTruncate, h.name, 0); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("faultfs: truncate %s: negative size", h.name)
	}
	for int64(len(h.file.data)) < size {
		h.file.data = append(h.file.data, 0)
	}
	h.file.data = h.file.data[:size]
	if h.off > size {
		h.off = size
	}
	return nil
}

func (h *simHandle) Close() error {
	h.sim.mu.Lock()
	defer h.sim.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	if h.sim.crashed || h.epoch != h.sim.epoch {
		return ErrCrashed
	}
	return nil
}

func (h *simHandle) Name() string { return h.name }

// --- DirEntry ---

type simDirEntry struct {
	name string
	size int64
}

func (e simDirEntry) Name() string               { return e.name }
func (e simDirEntry) IsDir() bool                { return false }
func (e simDirEntry) Type() fs.FileMode          { return 0 }
func (e simDirEntry) Info() (fs.FileInfo, error) { return simFileInfo(e), nil }

type simFileInfo simDirEntry

func (i simFileInfo) Name() string       { return i.name }
func (i simFileInfo) Size() int64        { return i.size }
func (i simFileInfo) Mode() fs.FileMode  { return 0o644 }
func (i simFileInfo) ModTime() time.Time { return time.Time{} }
func (i simFileInfo) IsDir() bool        { return false }
func (i simFileInfo) Sys() any           { return nil }
