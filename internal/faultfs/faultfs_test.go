package faultfs

import (
	"errors"
	"os"
	"testing"
)

func mustMkdir(t *testing.T, s *Sim, dir string) {
	t.Helper()
	if err := s.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
}

func writeAll(t *testing.T, f File, b []byte) {
	t.Helper()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

// TestDurabilityModel pins the core semantics: bytes survive a crash only
// after File.Sync, and directory entries only after SyncDir.
func TestDurabilityModel(t *testing.T) {
	s := NewSim()
	mustMkdir(t, s, "/d")

	f, err := s.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Content synced, entry not: the file vanishes at crash.
	s.Reboot()
	if _, err := s.ReadFile("/d/a"); err == nil {
		t.Fatal("entry survived crash without SyncDir")
	}

	f, _ = s.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	writeAll(t, f, []byte("hello"))
	if err := s.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	// Entry synced, content not: the file survives empty.
	s.Reboot()
	if data, err := s.ReadFile("/d/a"); err != nil || len(data) != 0 {
		t.Fatalf("want empty durable file, got %q, %v", data, err)
	}

	f, _ = s.OpenFile("/d/a", os.O_WRONLY|os.O_APPEND, 0o644)
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte(" world")) // unsynced tail
	s.Reboot()
	if data, _ := s.ReadFile("/d/a"); string(data) != "hello" {
		t.Fatalf("durable image = %q, want %q", data, "hello")
	}
}

func TestRenameNeedsDirSync(t *testing.T) {
	s := NewSim()
	mustMkdir(t, s, "/d")
	f, _ := s.OpenFile("/d/tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	writeAll(t, f, []byte("x"))
	f.Sync()
	s.SyncDir("/d")

	if err := s.Rename("/d/tmp", "/d/final"); err != nil {
		t.Fatal(err)
	}
	s.Reboot() // no SyncDir: rename rolls back
	if _, err := s.ReadFile("/d/final"); err == nil {
		t.Fatal("rename survived crash without SyncDir")
	}
	if data, err := s.ReadFile("/d/tmp"); err != nil || string(data) != "x" {
		t.Fatalf("original entry lost: %q, %v", data, err)
	}

	s.Rename("/d/tmp", "/d/final")
	if err := s.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	s.Reboot()
	if data, err := s.ReadFile("/d/final"); err != nil || string(data) != "x" {
		t.Fatalf("synced rename lost: %q, %v", data, err)
	}
}

func TestTornWriteCrash(t *testing.T) {
	s := NewSim()
	mustMkdir(t, s, "/d")
	f, _ := s.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	writeAll(t, f, []byte("head"))
	f.Sync()
	s.SyncDir("/d")

	// Crash at the next write: half the bytes land in the page cache,
	// none of them are durable.
	crashOp := s.Ops() + 1
	s.SetHook(CrashAt(crashOp))
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if n != 4 {
		t.Fatalf("torn write applied %d bytes, want 4", n)
	}
	if !s.Crashed() {
		t.Fatal("sim not crashed")
	}
	// Everything fails until reboot.
	if _, err := s.ReadFile("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
	s.SetHook(nil)
	s.Reboot()
	if data, _ := s.ReadFile("/d/a"); string(data) != "head" {
		t.Fatalf("durable image = %q, want %q", data, "head")
	}
	// Pre-reboot handle is dead.
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write: %v", err)
	}
}

func TestInjectedErrorKeepsRunning(t *testing.T) {
	s := NewSim()
	mustMkdir(t, s, "/d")
	f, _ := s.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	op := s.Ops() + 1
	s.SetHook(ErrAt(op, ErrNoSpace, 2))
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrNoSpace) || n != 2 {
		t.Fatalf("want short write 2 + ErrNoSpace, got %d, %v", n, err)
	}
	s.SetHook(nil)
	writeAll(t, f, []byte("gh")) // machine still alive; tail is torn
	if data, _ := s.ReadFile("/d/a"); string(data) != "abgh" {
		t.Fatalf("volatile image = %q, want %q", data, "abgh")
	}
}

func TestLyingSync(t *testing.T) {
	s := NewSim()
	mustMkdir(t, s, "/d")
	f, _ := s.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	s.SyncDir("/d")
	writeAll(t, f, []byte("data"))
	s.SetHook(func(op Op) Fault {
		if op.Kind == OpSync {
			return Fault{LieSync: true}
		}
		return Fault{}
	})
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync must report success: %v", err)
	}
	s.SetHook(nil)
	s.Reboot()
	if data, _ := s.ReadFile("/d/a"); len(data) != 0 {
		t.Fatalf("lied-about sync persisted %q", data)
	}
}

func TestTruncateAndReadDir(t *testing.T) {
	s := NewSim()
	mustMkdir(t, s, "/d")
	f, _ := s.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	writeAll(t, f, []byte("0123456789"))
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("x")) // append lands at the new end
	if data, _ := s.ReadFile("/d/a"); string(data) != "0123x" {
		t.Fatalf("after truncate+append: %q", data)
	}
	s.CreateTemp("/d", "snap-*.tmp")
	entries, err := s.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name() != "a" {
		t.Fatalf("ReadDir: %v", entries)
	}
}

// TestOSRoundTrip exercises the production implementation against a real
// temp dir so both FS implementations stay behaviorally aligned.
func TestOSRoundTrip(t *testing.T) {
	fsys := OS()
	dir := t.TempDir()
	f, err := fsys.OpenFile(dir+"/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(dir+"/a", dir+"/b"); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(dir + "/b")
	if err != nil || string(data) != "he" {
		t.Fatalf("read back %q, %v", data, err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadDir: %v %v", entries, err)
	}
	if err := fsys.Remove(dir + "/b"); err != nil {
		t.Fatal(err)
	}
}
