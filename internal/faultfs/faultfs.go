// Package faultfs abstracts the filesystem surface the persistence layer
// touches — file opens, appends, fsyncs, renames, removals, and directory
// syncs — behind an interface small enough to substitute a fault-injecting
// simulator for the real OS (DESIGN.md §10).
//
// Two implementations ship:
//
//   - OS() returns the production filesystem. Its File values are literal
//     *os.File handles — the store's hot path pays one interface dispatch
//     and nothing else.
//   - NewSim() returns an in-memory filesystem that models the page cache:
//     every byte written is volatile until the file is fsynced, every
//     create/rename/remove is volatile until the parent directory is
//     fsynced, and Crash() discards all volatile state — exactly what a
//     power cut does to ext4. A hook can fail, tear, or crash any
//     operation at any syscall boundary (sim.go).
//
// The split is what makes crash consistency testable: the store's
// durability claims are proven by killing a Sim at every operation index
// and asserting recovery (internal/store's crash-matrix test), while
// production code keeps running on bare os calls.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the mutable-file surface the store needs. *os.File implements it
// directly.
type File interface {
	io.Writer
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file's contents (and its own metadata) to stable
	// storage. It does not persist the directory entry — SyncDir does.
	Sync() error
	// Truncate changes the file's size (used to chop a torn WAL tail).
	Truncate(size int64) error
}

// FS is the directory-store syscall surface: everything internal/store
// does to the world.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	// OpenFile opens name with os.OpenFile semantics for the flag subset
	// the store uses (O_CREATE, O_WRONLY, O_APPEND, O_TRUNC, O_RDONLY).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a unique temporary file in dir (os.CreateTemp
	// pattern rules).
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, persisting the entries (creates,
	// renames, removes) performed in it. POSIX durability for a rename is
	// file-sync *then* dir-sync; forgetting the latter is precisely the
	// class of bug the simulator exists to catch.
	SyncDir(dir string) error
}

// osFS is the production filesystem.
type osFS struct{}

// OS returns the real filesystem. Files returned by it are *os.File.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
