package core

import (
	"encoding/json"
	"strings"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

func TestAuditCreateAndIncorporate(t *testing.T) {
	p := NewDefault()
	a := vec("go", 1.0)
	p.Observe(a, filter.Relevant)
	p.Observe(vec("go", 1.0, "compiler", 0.2), filter.Relevant)

	trail := p.AuditTrail()
	if len(trail) != 2 {
		t.Fatalf("want 2 events, got %d: %+v", len(trail), trail)
	}

	create := trail[0]
	if create.Op != AuditCreate || create.Vector != 1 {
		t.Fatalf("create event = %+v", create)
	}
	if create.StrengthBefore != 0 || create.StrengthAfter != p.Options().InitialStrength {
		t.Errorf("create strengths = %v → %v", create.StrengthBefore, create.StrengthAfter)
	}
	if create.Theta != p.Options().Theta || create.Eta != p.Options().Eta {
		t.Errorf("create θ/η = %v/%v", create.Theta, create.Eta)
	}
	if create.Step != 1 || create.Seq != 0 || create.UnixNano == 0 {
		t.Errorf("create step/seq/time = %d/%d/%d", create.Step, create.Seq, create.UnixNano)
	}

	inc := trail[1]
	if inc.Op != AuditIncorporate || inc.Vector != 1 {
		t.Fatalf("incorporate event = %+v", inc)
	}
	if inc.Cosine < inc.Theta {
		t.Errorf("incorporate with cosine %v < θ %v", inc.Cosine, inc.Theta)
	}
	if inc.StrengthBefore != p.Options().InitialStrength || inc.StrengthAfter <= inc.StrengthBefore {
		t.Errorf("incorporate strengths = %v → %v (positive feedback must grow strength)",
			inc.StrengthBefore, inc.StrengthAfter)
	}
	if inc.VectorsAfter != 1 {
		t.Errorf("VectorsAfter = %d", inc.VectorsAfter)
	}
}

func TestAuditIgnoreAndDissimilarCreate(t *testing.T) {
	p := NewDefault()
	p.Observe(vsm.Vector{}, filter.Relevant) // zero doc
	p.Observe(vec("go", 1.0), filter.NotRelevant)
	p.Observe(vec("go", 1.0), filter.Relevant)         // create id 1
	p.Observe(vec("opera", 1.0), filter.NotRelevant)   // dissimilar, non-relevant
	p.Observe(vec("opera", 1.0), filter.Relevant)      // dissimilar, relevant → create id 2

	trail := p.AuditTrail()
	ops := make([]AuditOp, len(trail))
	for i, ev := range trail {
		ops[i] = ev.Op
	}
	want := []AuditOp{AuditIgnore, AuditIgnore, AuditCreate, AuditIgnore, AuditCreate}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
	// The dissimilar ignore names the nearest vector and its sub-θ cosine.
	if trail[3].Vector != 1 || trail[3].Cosine >= trail[3].Theta {
		t.Errorf("dissimilar ignore = %+v", trail[3])
	}
	// The second create keeps the cosine that failed the θ test.
	if trail[4].Vector != 2 || trail[4].Cosine >= trail[4].Theta {
		t.Errorf("second create = %+v", trail[4])
	}
}

func TestAuditMergeRecordsBothIDs(t *testing.T) {
	o := DefaultOptions()
	o.Theta = 0.6
	p := New(o)
	p.Observe(vec("a", 1.0), filter.Relevant)            // id 1
	p.Observe(vec("b", 1.0), filter.Relevant)            // id 2 (orthogonal)
	// Pull vector 2 toward vector 1 until the pair passes θ and merges.
	for i := 0; i < 20 && p.Counts().Merged == 0; i++ {
		p.Observe(vec("a", 0.7, "b", 0.7), filter.Relevant)
	}
	if p.Counts().Merged != 1 {
		t.Fatalf("no merge after pulling: %v", p)
	}
	var merge *AuditEvent
	for _, ev := range p.AuditTrail() {
		if ev.Op == AuditMerge {
			ev := ev
			merge = &ev
		}
	}
	if merge == nil {
		t.Fatal("no merge event in trail")
	}
	if merge.Vector == 0 || merge.Merged == 0 || merge.Vector == merge.Merged {
		t.Fatalf("merge ids = %d/%d", merge.Vector, merge.Merged)
	}
	if merge.Cosine < 0.6 {
		t.Errorf("merge cosine %v below θ", merge.Cosine)
	}
	if merge.StrengthAfter <= merge.StrengthBefore {
		t.Errorf("merge strengths = %v → %v (must sum)", merge.StrengthBefore, merge.StrengthAfter)
	}
	if merge.VectorsAfter != 1 {
		t.Errorf("VectorsAfter = %d", merge.VectorsAfter)
	}
}

func TestAuditDeleteAndAnnihilate(t *testing.T) {
	// Deletion: negative feedback decays strength below the threshold. The
	// delete rides the same step as an incorporate event, in that order.
	o := DefaultOptions()
	o.Theta = 0.0 // always incorporate
	o.UnweightedDecay = true
	p := New(o)
	p.Observe(vec("x", 1.0), filter.Relevant)
	p.Observe(vec("x", 0.9, "y", 0.4), filter.NotRelevant)
	trail := p.AuditTrail()
	if len(trail) != 3 || trail[1].Op != AuditIncorporate || trail[2].Op != AuditDelete {
		t.Fatalf("delete trail = %+v", trail)
	}
	del := trail[2]
	if del.StrengthBefore >= o.DeleteThreshold || del.StrengthAfter != 0 {
		t.Errorf("delete strengths = %v → %v", del.StrengthBefore, del.StrengthAfter)
	}
	if del.Step != trail[1].Step {
		t.Errorf("delete not on incorporate's step: %+v", trail)
	}

	// Annihilation: with η = 0.5 and decay off, negative feedback on an
	// identical vector cancels it exactly.
	o2 := DefaultOptions()
	o2.Theta = 0.0
	o2.Eta = 0.5
	o2.DisableDecay = true
	p2 := New(o2)
	p2.Observe(vec("x", 1.0), filter.Relevant)
	p2.Observe(vec("x", 1.0), filter.NotRelevant)
	if p2.Counts().Annihilated != 1 {
		t.Fatalf("no annihilation: %v", p2)
	}
	var ann *AuditEvent
	for _, ev := range p2.AuditTrail() {
		if ev.Op == AuditAnnihilate {
			ev := ev
			ann = &ev
		}
	}
	if ann == nil {
		t.Fatalf("annihilation happened but no event: %+v", p2.AuditTrail())
	}
	if ann.StrengthBefore == 0 || ann.StrengthAfter != 0 || ann.VectorsAfter != 0 {
		t.Errorf("annihilate event = %+v", *ann)
	}
}

func TestAuditTagNextObserve(t *testing.T) {
	p := NewDefault()
	p.TagNextObserve(42, "00000000000000ab")
	p.Observe(vec("go", 1.0), filter.Relevant)
	p.Observe(vec("go", 1.0), filter.Relevant) // untagged

	trail := p.AuditTrail()
	if len(trail) != 2 {
		t.Fatalf("want 2 events, got %d", len(trail))
	}
	if trail[0].Doc != 42 || trail[0].Trace != "00000000000000ab" {
		t.Errorf("tagged event = %+v", trail[0])
	}
	if trail[1].Doc != 0 || trail[1].Trace != "" {
		t.Errorf("tag leaked onto next step: %+v", trail[1])
	}
}

func TestAuditRingBoundAndSeq(t *testing.T) {
	o := DefaultOptions()
	o.AuditCapacity = 4
	p := New(o)
	for i := 0; i < 10; i++ {
		p.Observe(vec("go", 1.0), filter.Relevant)
	}
	trail := p.AuditTrail()
	if len(trail) != 4 {
		t.Fatalf("ring len = %d, want 4", len(trail))
	}
	// Oldest-first with contiguous Seq ending at the latest event.
	for i := 1; i < len(trail); i++ {
		if trail[i].Seq != trail[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq: %+v", trail)
		}
	}
	if last := trail[len(trail)-1]; last.Seq != 9 || last.Step != 10 {
		t.Errorf("last event seq/step = %d/%d, want 9/10", last.Seq, last.Step)
	}
}

func TestAuditDisabled(t *testing.T) {
	o := DefaultOptions()
	o.AuditCapacity = -1
	p := New(o)
	for i := 0; i < 5; i++ {
		p.Observe(vec("go", 1.0), filter.Relevant)
	}
	if trail := p.AuditTrail(); len(trail) != 0 {
		t.Fatalf("disabled journal recorded %d events", len(trail))
	}
}

func TestAuditResetAndCodecRestart(t *testing.T) {
	p := NewDefault()
	p.Observe(vec("go", 1.0), filter.Relevant)
	p.Observe(vec("rust", 1.0), filter.Relevant)
	p.Reset()
	if len(p.AuditTrail()) != 0 {
		t.Fatal("Reset kept audit events")
	}
	p.Observe(vec("go", 1.0), filter.Relevant)
	if ev := p.AuditTrail()[0]; ev.Vector != 1 || ev.Seq != 0 {
		t.Errorf("post-Reset ids/seq not restarted: %+v", ev)
	}

	// A restored snapshot gets fresh sequential ids and an empty journal,
	// and new vectors continue past the restored ones.
	p2 := NewDefault()
	p2.Observe(vec("a", 1.0), filter.Relevant)
	p2.Observe(vec("b", 1.0), filter.Relevant)
	blob, err := p2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewDefault()
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if len(restored.AuditTrail()) != 0 {
		t.Fatal("restored profile inherited audit events")
	}
	ids := make(map[uint64]bool)
	for _, pv := range restored.Vectors() {
		if pv.ID == 0 {
			t.Fatalf("restored vector without id: %+v", pv)
		}
		ids[pv.ID] = true
	}
	if len(ids) != 2 {
		t.Fatalf("restored ids not distinct: %v", ids)
	}
	restored.Observe(vec("c", 1.0), filter.Relevant)
	for _, pv := range restored.Vectors() {
		if pv.Vec.Weight("c") > 0 && ids[pv.ID] {
			t.Fatalf("new vector reused a restored id: %+v", pv)
		}
	}
}

func TestAuditEventJSON(t *testing.T) {
	p := NewDefault()
	p.TagNextObserve(7, "deadbeefdeadbeef")
	p.Observe(vec("go", 1.0), filter.Relevant)
	blob, err := json.Marshal(p.AuditTrail())
	if err != nil {
		t.Fatal(err)
	}
	s := string(blob)
	for _, want := range []string{`"op":"create"`, `"doc":7`, `"trace":"deadbeefdeadbeef"`, `"vector":1`, `"theta":0.15`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s: %s", want, s)
		}
	}
	if strings.Contains(s, `"merged"`) {
		t.Errorf("omitempty Merged serialized on create: %s", s)
	}
}

func TestExplainVectorID(t *testing.T) {
	p := NewDefault()
	p.Observe(vec("go", 1.0), filter.Relevant)
	p.Observe(vec("opera", 1.0), filter.Relevant)
	ex := p.Explain(vec("opera", 1.0), 5)
	if ex.VectorID != 2 {
		t.Fatalf("Explain.VectorID = %d, want 2 (ex=%+v)", ex.VectorID, ex)
	}
	if got := p.Explain(vsm.Vector{}, 5); got.VectorID != 0 {
		t.Errorf("zero doc VectorID = %d", got.VectorID)
	}
}

func TestAuditOpString(t *testing.T) {
	if AuditMerge.String() != "merge" || AuditOp(200).String() == "" {
		t.Fatal("AuditOp.String")
	}
}
