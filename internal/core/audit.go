package core

import (
	"encoding/json"
	"fmt"
	"time"
)

// The adaptation audit journal: a bounded ring of MM's structural
// operations (paper §3.2–3.4), kept per profile so every vector's
// existence — and disappearance — can be traced back to the feedback
// step that caused it. The journal is an in-memory diagnostic: it is not
// serialized with the profile (MarshalBinary skips it) and survives only
// as long as the process. The wire layer exposes it via /explainz.

// AuditOp names one structural operation on the profile.
type AuditOp uint8

const (
	// AuditCreate: a relevant document outside every similarity circle
	// seeded a new profile vector (§3.2).
	AuditCreate AuditOp = iota
	// AuditIncorporate: a judged document was folded into its most
	// similar profile vector (§3.2), including the strength update.
	AuditIncorporate
	// AuditMerge: two profile vectors pulled within θ of each other were
	// combined; the merged-away vector's id is in AuditEvent.Merged (§3.3).
	AuditMerge
	// AuditDelete: strength decay pushed the acting vector below the
	// deletion threshold and it was removed (§3.4).
	AuditDelete
	// AuditAnnihilate: negative feedback zeroed the acting vector
	// entirely and it was removed.
	AuditAnnihilate
	// AuditIgnore: the judgment had no structural effect (zero document,
	// dissimilar non-relevant, …).
	AuditIgnore
)

var auditOpNames = [...]string{
	AuditCreate:      "create",
	AuditIncorporate: "incorporate",
	AuditMerge:       "merge",
	AuditDelete:      "delete",
	AuditAnnihilate:  "annihilate",
	AuditIgnore:      "ignore",
}

// String returns the operation's wire name.
func (op AuditOp) String() string {
	if int(op) < len(auditOpNames) {
		return auditOpNames[op]
	}
	return fmt.Sprintf("op(%d)", op)
}

// MarshalJSON renders the operation as its string name.
func (op AuditOp) MarshalJSON() ([]byte, error) {
	return []byte(`"` + op.String() + `"`), nil
}

// UnmarshalJSON parses the string name back, so /explainz consumers can
// decode events into the same struct.
func (op *AuditOp) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("core: audit op: %w", err)
	}
	for i, name := range auditOpNames {
		if name == s {
			*op = AuditOp(i)
			return nil
		}
	}
	return fmt.Errorf("core: unknown audit op %q", s)
}

// AuditEvent is one structural operation as recorded in the journal.
// Cosine vs Theta explains *why* the operation happened (incorporate when
// cosine ≥ θ, create/ignore otherwise); Eta and the strength pair explain
// *how far* it moved the profile.
type AuditEvent struct {
	// Seq increases by one per event over the profile's lifetime, so a
	// reader can detect how much a bounded journal has dropped.
	Seq int `json:"seq"`
	// Step is the feedback step (Observe call) that produced the event; a
	// single step can emit several events (incorporate + delete, …).
	Step     int   `json:"step"`
	UnixNano int64 `json:"unix_nano"`
	Op       AuditOp `json:"op"`
	// Feedback is the judgment's direction: +1 relevant, −1 not.
	Feedback int `json:"feedback"`
	// Doc and Trace tie the event to the delivered document and the
	// request trace that carried the judgment, when the caller provided
	// them via TagNextObserve (the broker does). Doc is always emitted —
	// document ids start at 0, so 0 is a real id, not an absence marker.
	Doc   int64  `json:"doc"`
	Trace string `json:"trace,omitempty"`
	// Vector is the acting profile vector's stable id; Merged the id of
	// the vector that was merged away (merge events only).
	Vector uint64 `json:"vector,omitempty"`
	Merged uint64 `json:"merged,omitempty"`
	// Cosine is the similarity that drove the decision, compared against
	// Theta (the θ in force at the time).
	Cosine float64 `json:"cosine"`
	Theta  float64 `json:"theta"`
	Eta    float64 `json:"eta"`
	// StrengthBefore/After bracket the acting vector's strength across
	// the operation (0 before a create; 0 after a delete/annihilate).
	StrengthBefore float64 `json:"strength_before"`
	StrengthAfter  float64 `json:"strength_after"`
	// VectorsAfter is the profile size once the operation applied.
	VectorsAfter int `json:"vectors_after"`
}

// defaultAuditCapacity bounds the journal when Options.AuditCapacity is 0.
const defaultAuditCapacity = 64

// auditCap resolves the configured journal bound; ≤ 0 means disabled.
func (p *Profile) auditCap() int {
	switch {
	case p.opts.AuditCapacity > 0:
		return p.opts.AuditCapacity
	case p.opts.AuditCapacity < 0:
		return 0
	default:
		return defaultAuditCapacity
	}
}

// TagNextObserve attaches a document id and trace id (hex, from
// internal/trace) to every audit event the next Observe call emits. The
// broker calls it just before applying feedback, closing the loop from
// "this vector exists" back to "because user U judged doc D in trace T".
func (p *Profile) TagNextObserve(doc int64, trace string) {
	p.tagDoc, p.tagTrace = doc, trace
}

// audit files one event, stamping the shared per-step fields. All call
// sites run inside Observe, which owns step/time/tag state.
func (p *Profile) audit(ev AuditEvent) {
	capacity := p.auditCap()
	if capacity == 0 {
		return
	}
	ev.Seq = p.auditSeq
	p.auditSeq++
	ev.Step = p.step
	ev.UnixNano = p.stepTime
	ev.Doc = p.tagDoc
	ev.Trace = p.tagTrace
	ev.Theta = p.opts.Theta
	ev.Eta = p.opts.Eta
	ev.VectorsAfter = len(p.vectors)
	if len(p.auditBuf) < capacity {
		p.auditBuf = append(p.auditBuf, ev)
		return
	}
	p.auditBuf[p.auditPos] = ev
	p.auditPos = (p.auditPos + 1) % capacity
}

// AuditTrail returns a copy of the journal, oldest event first. The Seq
// field exposes how many earlier events the bounded ring has dropped.
func (p *Profile) AuditTrail() []AuditEvent {
	out := make([]AuditEvent, 0, len(p.auditBuf))
	out = append(out, p.auditBuf[p.auditPos:]...)
	out = append(out, p.auditBuf[:p.auditPos]...)
	return out
}

// beginStep stamps the wall clock for the events of one Observe call; the
// read is skipped entirely when the journal is disabled.
func (p *Profile) beginStep() {
	if p.auditCap() > 0 {
		p.stepTime = time.Now().UnixNano()
	}
}

// endStep clears the per-step tag so a stale doc/trace never leaks onto a
// later, untagged judgment.
func (p *Profile) endStep() {
	p.tagDoc, p.tagTrace = 0, ""
}
