package core

import (
	"mmprofile/internal/vsm"
)

// TermContribution is one term's share of a match score.
type TermContribution struct {
	Term string
	// Weight is the product of the profile-vector weight and the document
	// weight for the term — its additive contribution to the dot product.
	Weight float64
}

// Explanation breaks down why a document received its score: the matching
// cluster, its strength, and the terms that carried the similarity. It is
// what a user-facing system shows next to "why was I sent this?".
type Explanation struct {
	// Score is the profile's score for the document (max cluster cosine).
	Score float64
	// Cluster is the index of the best-matching profile vector in
	// Vectors() order at the time of the call; −1 when the profile is
	// empty or the document is zero.
	Cluster int
	// VectorID is the matching cluster's stable id (ProfileVector.ID),
	// which joins an explanation against the audit journal's events; 0
	// when Cluster is −1.
	VectorID uint64
	// Strength is the matching cluster's current strength.
	Strength float64
	// Contributions lists the shared terms in decreasing order of their
	// contribution to the score (at most the requested number).
	Contributions []TermContribution
}

// Explain scores the document and reports which cluster matched and which
// terms drove the match (top maxTerms of them). Like Score, it does not
// modify the profile.
func (p *Profile) Explain(v vsm.Vector, maxTerms int) Explanation {
	ex := Explanation{Cluster: -1}
	if v.IsZero() || len(p.vectors) == 0 {
		return ex
	}
	for i, pv := range p.vectors {
		// DotUnit keeps Explain's score identical to Score's.
		if s := vsm.DotUnit(pv.Vec, v); s > ex.Score {
			ex.Score = s
			ex.Cluster = i
		}
	}
	if ex.Cluster < 0 {
		return ex
	}
	best := p.vectors[ex.Cluster]
	ex.Strength = best.Strength
	ex.VectorID = best.ID

	// Shared-term contributions to the (normalized) dot product.
	norm := best.Vec.Norm() * v.Norm()
	if norm == 0 {
		return ex
	}
	m := make(map[string]float64)
	docW := v.ToMap()
	for i, t := range best.Vec.Terms {
		if dw, ok := docW[t]; ok {
			m[t] = best.Vec.Weights[i] * dw / norm
		}
	}
	contrib := vsm.FromMap(m) // sorts and drops non-positive
	for _, t := range contrib.TopTerms(maxTerms) {
		ex.Contributions = append(ex.Contributions, TermContribution{
			Term:   t,
			Weight: contrib.Weight(t),
		})
	}
	return ex
}
