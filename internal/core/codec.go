package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"mmprofile/internal/vsm"
)

// profileCodecVersion guards the binary layout; bump on change.
const profileCodecVersion = 1

func appendF64(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func readF64(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("core: truncated float")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])), buf[8:], nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(buf)
	if k <= 0 {
		return 0, nil, fmt.Errorf("core: truncated varint")
	}
	return v, buf[k:], nil
}

// MarshalBinary implements encoding.BinaryMarshaler: a compact,
// self-contained snapshot of the profile — options, feedback step,
// operation counters, and every profile vector with its strength — for the
// persistence layer (internal/store).
func (p *Profile) MarshalBinary() ([]byte, error) {
	buf := []byte{profileCodecVersion}
	for _, f := range []float64{
		p.opts.Theta, p.opts.Eta, p.opts.DecayC,
		p.opts.DeleteThreshold, p.opts.InitialStrength,
	} {
		buf = appendF64(buf, f)
	}
	flags := byte(0)
	if p.opts.DisableDecay {
		flags |= 1
	}
	if p.opts.DisableMerge {
		flags |= 2
	}
	if p.opts.UnweightedDecay {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(p.opts.MaxTerms))
	buf = binary.AppendUvarint(buf, uint64(p.opts.MaxVectors))
	buf = binary.AppendUvarint(buf, uint64(p.step))
	for _, c := range []int{
		p.ops.Created, p.ops.Incorporated, p.ops.Merged,
		p.ops.Deleted, p.ops.Annihilated, p.ops.Ignored,
	} {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.vectors)))
	for _, pv := range p.vectors {
		buf = vsm.AppendVector(buf, pv.Vec)
		buf = appendF64(buf, pv.Strength)
		buf = binary.AppendUvarint(buf, uint64(pv.CreatedAt))
		buf = binary.AppendUvarint(buf, uint64(pv.Incorporations))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, fully replacing
// the profile's state with the snapshot.
func (p *Profile) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("core: empty profile snapshot")
	}
	if data[0] != profileCodecVersion {
		return fmt.Errorf("core: unsupported profile codec version %d", data[0])
	}
	buf := data[1:]

	var opts Options
	var err error
	for _, dst := range []*float64{
		&opts.Theta, &opts.Eta, &opts.DecayC,
		&opts.DeleteThreshold, &opts.InitialStrength,
	} {
		if *dst, buf, err = readF64(buf); err != nil {
			return err
		}
	}
	if len(buf) < 1 {
		return fmt.Errorf("core: truncated flags")
	}
	opts.DisableDecay = buf[0]&1 != 0
	opts.DisableMerge = buf[0]&2 != 0
	opts.UnweightedDecay = buf[0]&4 != 0
	buf = buf[1:]
	var u uint64
	if u, buf, err = readUvarint(buf); err != nil {
		return err
	}
	opts.MaxTerms = int(u)
	if u, buf, err = readUvarint(buf); err != nil {
		return err
	}
	opts.MaxVectors = int(u)
	if err := opts.Validate(); err != nil {
		return fmt.Errorf("core: snapshot options: %w", err)
	}

	if u, buf, err = readUvarint(buf); err != nil {
		return err
	}
	step := int(u)
	var counts [6]int
	for i := range counts {
		if u, buf, err = readUvarint(buf); err != nil {
			return err
		}
		counts[i] = int(u)
	}

	if u, buf, err = readUvarint(buf); err != nil {
		return err
	}
	n := int(u)
	if n > 1<<20 {
		return fmt.Errorf("core: implausible vector count %d", n)
	}
	vectors := make([]*ProfileVector, 0, n)
	for i := 0; i < n; i++ {
		var vec vsm.Vector
		if vec, buf, err = vsm.DecodeVector(buf); err != nil {
			return fmt.Errorf("core: vector %d: %w", i, err)
		}
		pv := &ProfileVector{Vec: vec}
		if pv.Strength, buf, err = readF64(buf); err != nil {
			return err
		}
		if pv.Strength <= 0 || math.IsNaN(pv.Strength) || math.IsInf(pv.Strength, 0) {
			return fmt.Errorf("core: vector %d has invalid strength %v", i, pv.Strength)
		}
		if u, buf, err = readUvarint(buf); err != nil {
			return err
		}
		pv.CreatedAt = int(u)
		if u, buf, err = readUvarint(buf); err != nil {
			return err
		}
		pv.Incorporations = int(u)
		pv.ID = uint64(i + 1)
		vectors = append(vectors, pv)
	}
	if len(buf) != 0 {
		return fmt.Errorf("core: %d trailing bytes in profile snapshot", len(buf))
	}

	// The audit journal and vector ids are runtime-only diagnostics: the
	// snapshot carries neither, so restored vectors get fresh sequential
	// ids, the journal restarts empty, and its configured capacity (a
	// process-level setting, not profile state) carries over.
	opts.AuditCapacity = p.opts.AuditCapacity
	p.nextID = uint64(len(vectors))
	p.auditBuf = nil
	p.auditPos = 0
	p.auditSeq = 0
	p.endStep()

	p.opts = opts
	p.step = step
	p.ops = OpCounts{
		Created:      counts[0],
		Incorporated: counts[1],
		Merged:       counts[2],
		Deleted:      counts[3],
		Annihilated:  counts[4],
		Ignored:      counts[5],
	}
	p.vectors = vectors
	return nil
}
