package core_test

import (
	"fmt"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// Example demonstrates the basic MM loop: feed judged document vectors,
// watch the profile grow one cluster per discovered interest, score an
// unseen document.
func Example() {
	profile := core.NewDefault()

	cooking := vsm.FromMap(map[string]float64{"bake": 1, "oven": 1, "dough": 1}).Normalized()
	astronomy := vsm.FromMap(map[string]float64{"telescope": 1, "galaxy": 1, "star": 1}).Normalized()
	gossip := vsm.FromMap(map[string]float64{"celebrity": 1, "scandal": 1}).Normalized()

	profile.Observe(cooking, filter.Relevant)
	profile.Observe(astronomy, filter.Relevant)
	profile.Observe(gossip, filter.NotRelevant)

	fmt.Println("clusters:", profile.ProfileSize())

	comet := vsm.FromMap(map[string]float64{"telescope": 1, "comet": 1}).Normalized()
	fmt.Printf("score(comet page) = %.2f\n", profile.Score(comet))
	fmt.Printf("score(gossip page) = %.2f\n", profile.Score(gossip))
	// Output:
	// clusters: 2
	// score(comet page) = 0.41
	// score(gossip page) = 0.00
}

// ExampleOptions shows the θ knob: the same feedback stream under a low
// and a high similarity threshold.
func ExampleOptions() {
	docs := []vsm.Vector{
		vsm.FromMap(map[string]float64{"cat": 1, "dog": 0.5}).Normalized(),
		vsm.FromMap(map[string]float64{"cat": 0.5, "dog": 1}).Normalized(),
		vsm.FromMap(map[string]float64{"stock": 1, "bond": 0.5}).Normalized(),
	}
	for _, theta := range []float64{0.0, 0.9} {
		opts := core.DefaultOptions()
		opts.Theta = theta
		p := core.New(opts)
		for _, d := range docs {
			p.Observe(d, filter.Relevant)
		}
		fmt.Printf("theta=%.1f -> %d profile vector(s)\n", theta, p.ProfileSize())
	}
	// Output:
	// theta=0.0 -> 1 profile vector(s)
	// theta=0.9 -> 3 profile vector(s)
}
