// Package core implements MM, the paper's Multi-Modal self-adaptive profile
// algorithm (Section 3): a user profile represented as a dynamic set of
// weighted term vectors maintained by four operations driven by relevance
// feedback — incorporate, create, merge, and delete (strength decay).
package core

import "fmt"

// Options are MM's tuning parameters (paper Sections 3.5 and 5.1).
type Options struct {
	// Theta (θ ∈ [0,1]) is the similarity threshold. A judged document is
	// incorporated into its most similar profile vector when their cosine
	// exceeds Theta; otherwise a relevant document creates a new profile
	// vector. Theta also gates merging of profile vectors. θ = 0 collapses
	// MM to a single vector (Rocchio-like); θ = 1 keeps one vector per
	// relevant document (NRN-like). Paper default: 0.15.
	Theta float64
	// Eta (η ∈ [0,1]) is the adaptability: how far the active profile
	// vector moves toward (f_d = +1) or away from (f_d = −1) an
	// incorporated document: p ← (1−η)p + η·f_d·v. Paper default: 0.2.
	Eta float64
	// DecayC is the positive constant c of the strength decay function:
	// each incorporation multiplies the active vector's strength by
	// exp(c·f_d). Paper default: 0.5.
	DecayC float64
	// DeleteThreshold is the strength below which a profile vector is
	// removed. Paper default: 1.0 (also the creation strength).
	DeleteThreshold float64
	// InitialStrength is the strength assigned to a newly created profile
	// vector. Paper default: 1.0.
	InitialStrength float64
	// DisableDecay turns off strength bookkeeping and deletion entirely,
	// producing the paper's MMND variant (Section 5.5).
	DisableDecay bool
	// DisableMerge turns off the merge operation (Section 3.3), for
	// ablation: without merging, clusters pulled together by drifting
	// feedback stay redundant.
	DisableMerge bool
	// UnweightedDecay uses the plain strength update s ← s·exp(c·f_d)
	// instead of the similarity-weighted s ← s·exp(c·f_d·sim) this
	// implementation defaults to (see DESIGN.md §6), for ablation.
	UnweightedDecay bool
	// MaxTerms caps the number of term/weight pairs retained per profile
	// vector after each update. Paper default: 100.
	MaxTerms int
	// MaxVectors, when positive, bounds the number of profile vectors: once
	// the bound is reached, a relevant document that would have created a
	// new vector is instead incorporated into its most similar existing
	// vector regardless of Theta. This is an extension for bounded-memory
	// deployments; 0 (the default) reproduces the paper exactly.
	MaxVectors int
	// AuditCapacity bounds the adaptation audit journal (audit.go): the
	// number of structural events retained per profile. 0 uses the default
	// (64); a negative value disables the journal entirely, making Observe
	// skip its per-step clock read.
	AuditCapacity int
}

// DefaultOptions returns the paper's experimental defaults: θ = 0.15,
// η = 0.2, c = 0.5, deletion threshold 1.0, 100 terms per vector.
func DefaultOptions() Options {
	return Options{
		Theta:           0.15,
		Eta:             0.2,
		DecayC:          0.5,
		DeleteThreshold: 1.0,
		InitialStrength: 1.0,
		MaxTerms:        100,
	}
}

// Validate reports whether the options are internally consistent.
func (o Options) Validate() error {
	switch {
	case o.Theta < 0 || o.Theta > 1:
		return fmt.Errorf("core: Theta %v outside [0,1]", o.Theta)
	case o.Eta < 0 || o.Eta > 1:
		return fmt.Errorf("core: Eta %v outside [0,1]", o.Eta)
	case o.DecayC < 0:
		return fmt.Errorf("core: DecayC %v negative", o.DecayC)
	case o.InitialStrength <= 0:
		return fmt.Errorf("core: InitialStrength %v not positive", o.InitialStrength)
	case o.MaxTerms <= 0:
		return fmt.Errorf("core: MaxTerms %v not positive", o.MaxTerms)
	case o.MaxVectors < 0:
		return fmt.Errorf("core: MaxVectors %v negative", o.MaxVectors)
	}
	return nil
}
