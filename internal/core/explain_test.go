package core

import (
	"math"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

func TestExplainEmptyAndZero(t *testing.T) {
	p := NewDefault()
	ex := p.Explain(vec("cat", 1.0), 5)
	if ex.Cluster != -1 || ex.Score != 0 {
		t.Errorf("empty profile explanation: %+v", ex)
	}
	p.Observe(vec("cat", 1.0), filter.Relevant)
	ex = p.Explain(vsm.Vector{}, 5)
	if ex.Cluster != -1 {
		t.Errorf("zero doc explanation: %+v", ex)
	}
}

func TestExplainMatchesScore(t *testing.T) {
	p := NewDefault()
	p.Observe(vec("cat", 1.0, "dog", 0.5), filter.Relevant)
	p.Observe(vec("stock", 1.0, "bond", 0.5), filter.Relevant)
	doc := vec("stock", 1.0, "market", 0.3)
	ex := p.Explain(doc, 5)
	if math.Abs(ex.Score-p.Score(doc)) > 1e-12 {
		t.Errorf("Explain score %v != Score %v", ex.Score, p.Score(doc))
	}
	if ex.Cluster < 0 {
		t.Fatal("no cluster identified")
	}
	if ex.Strength <= 0 {
		t.Errorf("strength = %v", ex.Strength)
	}
}

func TestExplainContributionsSumToScore(t *testing.T) {
	p := NewDefault()
	p.Observe(vec("cat", 1.0, "dog", 0.7, "bird", 0.3), filter.Relevant)
	doc := vec("cat", 0.8, "dog", 0.6)
	ex := p.Explain(doc, 10)
	var sum float64
	for _, c := range ex.Contributions {
		if c.Weight <= 0 {
			t.Errorf("non-positive contribution %+v", c)
		}
		sum += c.Weight
	}
	if math.Abs(sum-ex.Score) > 1e-9 {
		t.Errorf("contributions sum %v != score %v", sum, ex.Score)
	}
	// Shared terms only.
	for _, c := range ex.Contributions {
		if c.Term == "bird" {
			t.Error("unshared term contributed")
		}
	}
	// Descending order, "cat" strongest.
	if len(ex.Contributions) != 2 || ex.Contributions[0].Term != "cat" {
		t.Errorf("contributions = %+v", ex.Contributions)
	}
	if ex.Contributions[0].Weight < ex.Contributions[1].Weight {
		t.Error("contributions not sorted")
	}
}

func TestExplainMaxTermsCap(t *testing.T) {
	p := NewDefault()
	p.Observe(vec("a", 1.0, "b", 0.9, "c", 0.8, "d", 0.7), filter.Relevant)
	ex := p.Explain(vec("a", 1.0, "b", 1.0, "c", 1.0, "d", 1.0), 2)
	if len(ex.Contributions) != 2 {
		t.Errorf("cap not applied: %d contributions", len(ex.Contributions))
	}
}
