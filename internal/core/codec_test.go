package core

import (
	"math"
	"math/rand"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// trainRandom feeds a profile n random judgments.
func trainRandom(p *Profile, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	terms := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for step := 0; step < n; step++ {
		m := map[string]float64{}
		for _, tm := range terms {
			if rng.Float64() < 0.4 {
				m[tm] = rng.Float64() + 0.01
			}
		}
		v := vsm.FromMap(m).Normalized()
		if v.IsZero() {
			continue
		}
		fd := filter.Relevant
		if rng.Float64() < 0.4 {
			fd = filter.NotRelevant
		}
		p.Observe(v, fd)
	}
}

func TestProfileCodecRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	opts.Theta = 0.23
	opts.Eta = 0.35
	opts.MaxVectors = 7
	opts.DisableDecay = true
	orig := New(opts)
	trainRandom(orig, 5, 120)

	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewDefault()
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}

	if restored.Options() != orig.Options() {
		t.Errorf("options: %+v != %+v", restored.Options(), orig.Options())
	}
	if restored.Counts() != orig.Counts() {
		t.Errorf("counts: %+v != %+v", restored.Counts(), orig.Counts())
	}
	if restored.ProfileSize() != orig.ProfileSize() {
		t.Fatalf("size: %d != %d", restored.ProfileSize(), orig.ProfileSize())
	}
	ov, rv := orig.Vectors(), restored.Vectors()
	for i := range ov {
		if math.Abs(ov[i].Strength-rv[i].Strength) > 1e-12 {
			t.Errorf("vector %d strength %v != %v", i, rv[i].Strength, ov[i].Strength)
		}
		if vsm.Cosine(ov[i].Vec, rv[i].Vec) < 1-1e-12 {
			t.Errorf("vector %d content differs", i)
		}
		if ov[i].CreatedAt != rv[i].CreatedAt || ov[i].Incorporations != rv[i].Incorporations {
			t.Errorf("vector %d metadata differs", i)
		}
	}
}

// TestProfileCodecBehavioralEquivalence is the property that matters for
// recovery: a restored profile must behave identically to the original
// under further feedback and scoring.
func TestProfileCodecBehavioralEquivalence(t *testing.T) {
	orig := NewDefault()
	trainRandom(orig, 9, 80)
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewDefault()
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// Continue training both with the same stream and compare scores.
	trainRandom(orig, 31, 60)
	trainRandom(restored, 31, 60)
	probeRng := rand.New(rand.NewSource(77))
	for i := 0; i < 30; i++ {
		m := map[string]float64{}
		for _, tm := range []string{"a", "c", "e", "g", "i"} {
			if probeRng.Float64() < 0.6 {
				m[tm] = probeRng.Float64()
			}
		}
		probe := vsm.FromMap(m).Normalized()
		if math.Abs(orig.Score(probe)-restored.Score(probe)) > 1e-12 {
			t.Fatalf("probe %d: scores diverge (%v vs %v)", i, orig.Score(probe), restored.Score(probe))
		}
	}
	if orig.ProfileSize() != restored.ProfileSize() {
		t.Errorf("sizes diverge: %d vs %d", orig.ProfileSize(), restored.ProfileSize())
	}
}

func TestProfileCodecRejectsCorruption(t *testing.T) {
	p := NewDefault()
	trainRandom(p, 3, 50)
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewDefault()
	if err := fresh.UnmarshalBinary(nil); err == nil {
		t.Error("empty snapshot accepted")
	}
	if err := fresh.UnmarshalBinary([]byte{99}); err == nil {
		t.Error("bad version accepted")
	}
	// Truncations must error, never panic.
	for cut := 1; cut < len(blob); cut += 7 {
		if err := fresh.UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is rejected.
	if err := fresh.UnmarshalBinary(append(append([]byte{}, blob...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// A failed unmarshal must not corrupt the target profile.
	trained := NewDefault()
	trainRandom(trained, 4, 30)
	size := trained.ProfileSize()
	_ = trained.UnmarshalBinary(blob[:len(blob)/2])
	if trained.ProfileSize() != size {
		t.Error("failed UnmarshalBinary mutated the profile")
	}
}

func TestProfileCodecEmptyProfile(t *testing.T) {
	blob, err := NewDefault().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Options{Theta: 0.5, Eta: 0.5, InitialStrength: 2, MaxTerms: 3})
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.ProfileSize() != 0 || restored.Options() != DefaultOptions() {
		t.Error("empty profile round trip failed")
	}
}
