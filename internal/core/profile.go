package core

import (
	"fmt"
	"math"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// ProfileVector is one cluster of the multi-modal profile: a representative
// vector plus the strength statistic that drives deletion.
type ProfileVector struct {
	// ID identifies the vector across its lifetime, for the adaptation
	// audit journal (audit.go): ids are assigned once at creation, never
	// reused, and survive the index shifts that remove/merge cause. A
	// profile restored from a snapshot gets fresh sequential ids (the
	// codec does not persist them, matching the journal itself).
	ID uint64
	// Vec is the cluster representative, truncated to Options.MaxTerms and
	// unit-normalized.
	Vec vsm.Vector
	// Strength starts at Options.InitialStrength and is multiplied by
	// exp(DecayC·f_d) on every incorporation; merging sums strengths.
	Strength float64
	// CreatedAt is the feedback step at which the vector was created.
	CreatedAt int
	// Incorporations counts documents folded into this vector.
	Incorporations int
}

// OpCounts tallies MM's structural operations, for introspection and for
// the ablation benchmarks.
type OpCounts struct {
	Created      int // new profile vectors created
	Incorporated int // documents folded into an existing vector
	Merged       int // merge operations performed
	Deleted      int // vectors removed by strength decay
	Annihilated  int // vectors removed because negative feedback zeroed them
	Ignored      int // judgments with no effect (dissimilar non-relevant, …)
}

// Profile is the MM learner. It implements filter.Learner. A Profile is
// not safe for concurrent use.
type Profile struct {
	opts    Options
	vectors []*ProfileVector
	step    int
	ops     OpCounts

	// nextID seeds ProfileVector.ID; the audit journal state lives in
	// audit.go and is not part of the serialized snapshot.
	nextID   uint64
	auditBuf []AuditEvent
	auditPos int
	auditSeq int
	stepTime int64
	tagDoc   int64
	tagTrace string
}

// New constructs an MM profile; it panics if opts fail validation, since
// option values are compile-time constants in every intended use.
func New(opts Options) *Profile {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &Profile{opts: opts}
}

// NewDefault constructs an MM profile with the paper's default parameters.
func NewDefault() *Profile { return New(DefaultOptions()) }

// Name implements filter.Learner.
func (p *Profile) Name() string {
	if p.opts.DisableDecay {
		return "MMND"
	}
	return "MM"
}

// Options returns the profile's configuration.
func (p *Profile) Options() Options { return p.opts }

// ProfileSize implements filter.Learner: the number of profile vectors,
// the storage metric of Figure 7.
func (p *Profile) ProfileSize() int { return len(p.vectors) }

// Counts returns the operation tallies accumulated since construction or
// the last Reset.
func (p *Profile) Counts() OpCounts { return p.ops }

// Vectors returns a deep copy of the current profile vectors, strongest
// first. The copy keeps callers from mutating internal state.
func (p *Profile) Vectors() []ProfileVector {
	out := make([]ProfileVector, len(p.vectors))
	for i, pv := range p.vectors {
		out[i] = ProfileVector{
			ID:             pv.ID,
			Vec:            pv.Vec.Clone(),
			Strength:       pv.Strength,
			CreatedAt:      pv.CreatedAt,
			Incorporations: pv.Incorporations,
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Strength > out[j-1].Strength; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ProfileVectors implements filter.VectorSource: the current cluster
// representatives, unit-normalized, as independent copies.
func (p *Profile) ProfileVectors() []vsm.Vector {
	out := make([]vsm.Vector, len(p.vectors))
	for i, pv := range p.vectors {
		out[i] = pv.Vec.Clone()
	}
	return out
}

// ForEachStrength calls fn with each profile vector's current strength,
// in internal order. It allocates nothing, so callers (the broker's
// adaptation telemetry) can sample the strength distribution on every
// feedback step. The caller must serialize access as with every other
// method.
func (p *Profile) ForEachStrength(fn func(float64)) {
	for _, pv := range p.vectors {
		fn(pv.Strength)
	}
}

// Reset implements filter.Learner. It also discards the audit journal and
// restarts vector id assignment.
func (p *Profile) Reset() {
	p.vectors = nil
	p.step = 0
	p.ops = OpCounts{}
	p.nextID = 0
	p.auditBuf = nil
	p.auditPos = 0
	p.auditSeq = 0
	p.endStep()
}

// Score implements filter.Learner: the relevance of a document to a
// multi-modal profile is its cosine similarity to the closest profile
// vector (the Foltz–Dumais convention the paper adopts). An empty profile
// scores everything 0. Profile vectors are unit-normalized by
// construction and v must be too (all document vectors in this system
// are), so the similarity is a plain dot product (vsm.DotUnit).
func (p *Profile) Score(v vsm.Vector) float64 {
	best := 0.0
	for _, pv := range p.vectors {
		if s := vsm.DotUnit(pv.Vec, v); s > best {
			best = s
		}
	}
	return best
}

// Observe implements filter.Learner; it is the paper's Section 3.2–3.4
// update procedure.
func (p *Profile) Observe(v vsm.Vector, fd filter.Feedback) {
	p.step++
	p.beginStep()
	defer p.endStep()
	if v.IsZero() {
		p.ops.Ignored++
		p.audit(AuditEvent{Op: AuditIgnore, Feedback: int(fd)})
		return
	}

	actIdx := p.closestTo(v, -1)
	if actIdx < 0 {
		// Empty profile: only a relevant document may seed it (§3.2).
		if fd == filter.Relevant {
			p.create(v, 0)
		} else {
			p.ops.Ignored++
			p.audit(AuditEvent{Op: AuditIgnore, Feedback: int(fd)})
		}
		return
	}

	act := p.vectors[actIdx]
	sim := vsm.DotUnit(act.Vec, v)
	// Incorporation requires sim ≥ θ (so θ = 0 always incorporates and the
	// profile stays a single vector, and θ = 1 creates a vector per distinct
	// relevant document — the paper's two extremes in §3.5).
	if sim < p.opts.Theta {
		// Outside every similarity circle: relevant documents start a new
		// cluster, non-relevant ones are ignored (§3.2).
		if fd != filter.Relevant {
			p.ops.Ignored++
			p.audit(AuditEvent{
				Op: AuditIgnore, Feedback: int(fd),
				Vector: act.ID, Cosine: sim,
				StrengthBefore: act.Strength, StrengthAfter: act.Strength,
			})
			return
		}
		if p.opts.MaxVectors > 0 && len(p.vectors) >= p.opts.MaxVectors {
			// Bounded-memory extension: fold into the nearest vector anyway.
			p.incorporate(actIdx, v, fd, sim)
			return
		}
		p.create(v, sim)
		return
	}
	p.incorporate(actIdx, v, fd, sim)
}

// create inserts v as a new profile vector. sim is the cosine to the
// nearest existing vector (0 when the profile was empty), kept for the
// audit journal so a create can be read as "closest cluster was sim < θ".
func (p *Profile) create(v vsm.Vector, sim float64) {
	p.nextID++
	pv := &ProfileVector{
		ID:        p.nextID,
		Vec:       v.Truncated(p.opts.MaxTerms).Normalized(),
		Strength:  p.opts.InitialStrength,
		CreatedAt: p.step,
	}
	p.vectors = append(p.vectors, pv)
	p.ops.Created++
	p.audit(AuditEvent{
		Op: AuditCreate, Feedback: int(filter.Relevant),
		Vector: pv.ID, Cosine: sim,
		StrengthAfter: pv.Strength,
	})
}

// incorporate folds v into the active vector at index actIdx, applies
// strength decay and the deletion rule, then attempts a single merge
// (§3.2–3.4). sim is the pre-move cosine between the active vector and v:
// the strength exponent is similarity-weighted (s ← s·exp(c·f_d·sim)), so
// a barely-similar judgment barely moves the strength while a judgment
// close to the cluster's core counts fully — see DESIGN.md for why this
// instantiation of the paper's "simple exponential decay" was chosen.
func (p *Profile) incorporate(actIdx int, v vsm.Vector, fd filter.Feedback, sim float64) {
	act := p.vectors[actIdx]
	before := act.Strength
	moved := vsm.Combine(act.Vec, 1-p.opts.Eta, v, p.opts.Eta*float64(fd))
	moved = moved.Truncated(p.opts.MaxTerms).Normalized()
	p.ops.Incorporated++
	act.Incorporations++

	if moved.IsZero() {
		// Negative feedback annihilated the vector entirely.
		p.remove(actIdx)
		p.ops.Annihilated++
		p.audit(AuditEvent{
			Op: AuditAnnihilate, Feedback: int(fd),
			Vector: act.ID, Cosine: sim,
			StrengthBefore: before,
		})
		return
	}
	act.Vec = moved

	if !p.opts.DisableDecay {
		exponent := p.opts.DecayC * float64(fd)
		if !p.opts.UnweightedDecay {
			exponent *= sim
		}
		act.Strength *= math.Exp(exponent)
		if act.Strength < p.opts.DeleteThreshold {
			decayed := act.Strength
			p.remove(actIdx)
			p.ops.Deleted++
			p.audit(AuditEvent{
				Op: AuditIncorporate, Feedback: int(fd),
				Vector: act.ID, Cosine: sim,
				StrengthBefore: before, StrengthAfter: decayed,
			})
			p.audit(AuditEvent{
				Op: AuditDelete, Feedback: int(fd),
				Vector: act.ID, Cosine: sim,
				StrengthBefore: decayed,
			})
			return
		}
	}
	p.audit(AuditEvent{
		Op: AuditIncorporate, Feedback: int(fd),
		Vector: act.ID, Cosine: sim,
		StrengthBefore: before, StrengthAfter: act.Strength,
	})

	// Merge check: only pairs containing the (moved) active vector can have
	// changed distance; at most one merge per feedback step, further merges
	// happen lazily (§3.3).
	if p.opts.DisableMerge || len(p.vectors) < 2 {
		return
	}
	cIdx := p.closestTo(act.Vec, actIdx)
	if cIdx < 0 {
		return
	}
	c := p.vectors[cIdx]
	mergeSim := vsm.DotUnit(act.Vec, c.Vec)
	if mergeSim < p.opts.Theta {
		return
	}
	// Mixing ratio is the strength share of the removed vector (§3.3).
	mergeBefore := act.Strength
	r := c.Strength / (act.Strength + c.Strength)
	merged := vsm.Combine(act.Vec, 1-r, c.Vec, r)
	act.Vec = merged.Truncated(p.opts.MaxTerms).Normalized()
	act.Strength += c.Strength
	act.Incorporations += c.Incorporations
	p.remove(cIdx)
	p.ops.Merged++
	p.audit(AuditEvent{
		Op: AuditMerge, Feedback: int(fd),
		Vector: act.ID, Merged: c.ID, Cosine: mergeSim,
		StrengthBefore: mergeBefore, StrengthAfter: act.Strength,
	})
}

// closestTo returns the index of the profile vector most similar to v,
// skipping index skip (pass −1 to consider all); −1 when the profile is
// empty or only contains the skipped vector.
func (p *Profile) closestTo(v vsm.Vector, skip int) int {
	best, bestIdx := -1.0, -1
	for i, pv := range p.vectors {
		if i == skip {
			continue
		}
		if s := vsm.DotUnit(pv.Vec, v); s > best {
			best, bestIdx = s, i
		}
	}
	return bestIdx
}

// remove deletes the vector at index i, preserving the order of the rest
// (determinism matters for reproducible experiments).
func (p *Profile) remove(i int) {
	p.vectors = append(p.vectors[:i], p.vectors[i+1:]...)
}

// String summarizes the profile for logs.
func (p *Profile) String() string {
	return fmt.Sprintf("%s{vectors: %d, steps: %d, ops: %+v}", p.Name(), len(p.vectors), p.step, p.ops)
}

func init() {
	filter.Register("MM", func() filter.Learner { return NewDefault() })
	filter.Register("MMND", func() filter.Learner {
		o := DefaultOptions()
		o.DisableDecay = true
		return New(o)
	})
}
