package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mmprofile/internal/filter"
	"mmprofile/internal/rocchio"
	"mmprofile/internal/vsm"
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

func TestEmptyProfile(t *testing.T) {
	p := NewDefault()
	if p.ProfileSize() != 0 {
		t.Fatal("new profile not empty")
	}
	if got := p.Score(vec("x", 1.0)); got != 0 {
		t.Errorf("empty profile Score = %v", got)
	}
	// Negative feedback on an empty profile is ignored (§3.2).
	p.Observe(vec("x", 1.0), filter.NotRelevant)
	if p.ProfileSize() != 0 {
		t.Error("negative feedback created a vector in an empty profile")
	}
	if p.Counts().Ignored != 1 {
		t.Errorf("Ignored = %d", p.Counts().Ignored)
	}
	// Positive feedback seeds the profile.
	p.Observe(vec("x", 1.0), filter.Relevant)
	if p.ProfileSize() != 1 {
		t.Error("positive feedback did not create a vector")
	}
}

func TestZeroVectorIgnored(t *testing.T) {
	p := NewDefault()
	p.Observe(vsm.Vector{}, filter.Relevant)
	if p.ProfileSize() != 0 || p.Counts().Ignored != 1 {
		t.Error("zero document vector not ignored")
	}
}

func TestIncorporateMovesTowardDocument(t *testing.T) {
	p := NewDefault()
	a := vec("cat", 1.0, "dog", 1.0)
	b := vec("cat", 1.0, "fish", 1.0) // cosine(a,b) = 0.5 > θ
	p.Observe(a, filter.Relevant)
	before := p.Score(b)
	p.Observe(b, filter.Relevant)
	if p.ProfileSize() != 1 {
		t.Fatalf("incorporation changed profile size to %d", p.ProfileSize())
	}
	after := p.Score(b)
	if after <= before {
		t.Errorf("vector did not move toward document: %v -> %v", before, after)
	}
}

func TestNegativeFeedbackMovesAway(t *testing.T) {
	p := NewDefault()
	a := vec("cat", 1.0, "dog", 1.0)
	b := vec("cat", 1.0) // similar to a
	p.Observe(a, filter.Relevant)
	before := p.Score(b)
	p.Observe(b, filter.NotRelevant)
	if p.ProfileSize() == 1 {
		after := p.Score(b)
		if after >= before {
			t.Errorf("vector did not move away: %v -> %v", before, after)
		}
	}
	// (If the vector was deleted by decay, moving away is moot.)
}

func TestDissimilarRelevantCreatesVector(t *testing.T) {
	p := NewDefault()
	p.Observe(vec("cat", 1.0, "dog", 1.0), filter.Relevant)
	p.Observe(vec("stock", 1.0, "bond", 1.0), filter.Relevant) // orthogonal
	if p.ProfileSize() != 2 {
		t.Fatalf("profile size = %d, want 2", p.ProfileSize())
	}
	if p.Counts().Created != 2 {
		t.Errorf("Created = %d", p.Counts().Created)
	}
}

func TestDissimilarNonRelevantIgnored(t *testing.T) {
	p := NewDefault()
	p.Observe(vec("cat", 1.0), filter.Relevant)
	p.Observe(vec("stock", 1.0), filter.NotRelevant)
	if p.ProfileSize() != 1 {
		t.Errorf("profile size = %d, want 1", p.ProfileSize())
	}
}

func TestSimilarNonRelevantIncorporated(t *testing.T) {
	// Non-relevant documents cannot create clusters but are incorporated
	// into similar ones (§3.1).
	o := DefaultOptions()
	o.DisableDecay = true // keep the vector alive to observe the move
	p := New(o)
	p.Observe(vec("cat", 1.0, "dog", 1.0), filter.Relevant)
	p.Observe(vec("cat", 1.0, "dog", 1.0, "noise", 0.1), filter.NotRelevant)
	if p.Counts().Incorporated != 1 {
		t.Errorf("Incorporated = %d", p.Counts().Incorporated)
	}
}

func TestScoreIsMaxCosine(t *testing.T) {
	p := NewDefault()
	a := vec("cat", 1.0)
	b := vec("stock", 1.0)
	p.Observe(a, filter.Relevant)
	p.Observe(b, filter.Relevant)
	probe := vec("stock", 1.0, "bond", 1.0)
	want := vsm.Cosine(b, probe)
	if got := p.Score(probe); math.Abs(got-want) > 1e-9 {
		t.Errorf("Score = %v, want max cosine %v", got, want)
	}
}

func TestMergePullsClustersTogether(t *testing.T) {
	o := DefaultOptions()
	o.Theta = 0.3
	o.Eta = 0.5
	o.DisableDecay = true
	p := New(o)
	// Two clusters sharing no terms.
	p.Observe(vec("cat", 1.0), filter.Relevant)
	p.Observe(vec("dog", 1.0), filter.Relevant)
	if p.ProfileSize() != 2 {
		t.Fatalf("setup: size = %d", p.ProfileSize())
	}
	// Documents containing both concepts drag the vectors toward each
	// other until they merge.
	bridge := vec("cat", 1.0, "dog", 1.0)
	for i := 0; i < 10 && p.ProfileSize() > 1; i++ {
		p.Observe(bridge, filter.Relevant)
	}
	if p.ProfileSize() != 1 {
		t.Fatalf("clusters never merged: size = %d", p.ProfileSize())
	}
	if p.Counts().Merged == 0 {
		t.Error("merge not counted")
	}
}

func TestMergeSumsStrengths(t *testing.T) {
	// With decay disabled strengths stay at 1.0, so a merge must produce a
	// vector of strength exactly 2.0.
	o := DefaultOptions()
	o.Theta = 0.1
	o.DisableDecay = true
	p := New(o)
	p.Observe(vec("cat", 1.0), filter.Relevant)
	p.Observe(vec("dog", 1.0), filter.Relevant)
	bridge := vec("cat", 1.0, "dog", 1.0)
	for i := 0; i < 20 && p.ProfileSize() > 1; i++ {
		p.Observe(bridge, filter.Relevant)
	}
	if p.ProfileSize() != 1 {
		t.Fatalf("no merge happened")
	}
	got := p.Vectors()[0].Strength
	if math.Abs(got-2.0) > 1e-9 {
		t.Errorf("merged strength = %v, want 2.0", got)
	}
}

func TestDecayDeletesVector(t *testing.T) {
	p := NewDefault() // c = 0.5, threshold 1.0, initial 1.0
	target := vec("cat", 1.0, "dog", 1.0)
	p.Observe(target, filter.Relevant)
	// Build up strength with positives.
	p.Observe(target, filter.Relevant)
	p.Observe(target, filter.Relevant) // strength = e^1.0 ≈ 2.72
	// Now negatives: strength e^1.0 → e^0.5 → e^0 = 1.0 (not < 1) → e^-0.5 → deleted.
	for i := 0; i < 5 && p.ProfileSize() > 0; i++ {
		p.Observe(target, filter.NotRelevant)
	}
	if p.ProfileSize() != 0 {
		t.Fatalf("vector survived sustained negative feedback: %s", p)
	}
	if p.Counts().Deleted == 0 && p.Counts().Annihilated == 0 {
		t.Error("no deletion counted")
	}
}

func TestDecayStrengthArithmetic(t *testing.T) {
	p := NewDefault()
	target := vec("cat", 1.0)
	p.Observe(target, filter.Relevant)
	p.Observe(target, filter.Relevant)
	pv := p.Vectors()[0]
	want := math.Exp(0.5)
	if math.Abs(pv.Strength-want) > 1e-9 {
		t.Errorf("strength after one positive = %v, want %v", pv.Strength, want)
	}
}

func TestMMNDNeverDeletes(t *testing.T) {
	o := DefaultOptions()
	o.DisableDecay = true
	p := New(o)
	target := vec("cat", 1.0, "dog", 1.0, "bird", 1.0)
	p.Observe(target, filter.Relevant)
	near := vec("cat", 1.0, "dog", 1.0, "bird", 1.0, "noise", 0.3)
	for i := 0; i < 10; i++ {
		p.Observe(near, filter.NotRelevant)
	}
	// The vector may only vanish by annihilation (weights driven to zero),
	// never by strength decay.
	if p.Counts().Deleted != 0 {
		t.Errorf("MMND performed a decay deletion: %+v", p.Counts())
	}
	if p.Name() != "MMND" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestThetaZeroSingleVector(t *testing.T) {
	o := DefaultOptions()
	o.Theta = 0
	p := New(o)
	rng := rand.New(rand.NewSource(3))
	terms := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for i := 0; i < 100; i++ {
		m := map[string]float64{}
		for _, tm := range terms {
			if rng.Float64() < 0.3 {
				m[tm] = rng.Float64()
			}
		}
		v := vsm.FromMap(m).Normalized()
		if v.IsZero() {
			continue
		}
		fd := filter.Relevant
		if rng.Float64() < 0.5 {
			fd = filter.NotRelevant
		}
		p.Observe(v, fd)
		if p.ProfileSize() > 1 {
			t.Fatalf("θ=0 profile grew to %d vectors at step %d", p.ProfileSize(), i)
		}
	}
}

func TestThetaOneVectorPerDistinctDocument(t *testing.T) {
	o := DefaultOptions()
	o.Theta = 1.0
	p := New(o)
	docs := []vsm.Vector{
		vec("cat", 1.0, "dog", 0.5),
		vec("stock", 1.0, "bond", 0.5),
		vec("guitar", 1.0, "piano", 0.5),
	}
	for _, d := range docs {
		p.Observe(d, filter.Relevant)
	}
	if p.ProfileSize() != len(docs) {
		t.Errorf("θ=1 profile size = %d, want %d", p.ProfileSize(), len(docs))
	}
	// An identical re-presentation must NOT create a new vector (cos = 1 ≥ θ).
	p.Observe(docs[0], filter.Relevant)
	if p.ProfileSize() != len(docs) {
		t.Errorf("identical document created a new vector at θ=1: %d", p.ProfileSize())
	}
}

func TestMaxVectorsBound(t *testing.T) {
	o := DefaultOptions()
	o.MaxVectors = 2
	o.DisableDecay = true
	p := New(o)
	p.Observe(vec("cat", 1.0), filter.Relevant)
	p.Observe(vec("stock", 1.0), filter.Relevant)
	p.Observe(vec("guitar", 1.0), filter.Relevant) // would create a third
	if p.ProfileSize() > 2 {
		t.Errorf("profile exceeded MaxVectors: %d", p.ProfileSize())
	}
}

func TestReset(t *testing.T) {
	p := NewDefault()
	p.Observe(vec("cat", 1.0), filter.Relevant)
	p.Reset()
	if p.ProfileSize() != 0 || p.Counts() != (OpCounts{}) {
		t.Error("Reset did not clear state")
	}
}

func TestVectorsReturnsCopies(t *testing.T) {
	p := NewDefault()
	p.Observe(vec("cat", 1.0, "dog", 0.5), filter.Relevant)
	vs := p.Vectors()
	vs[0].Vec.Weights[0] = 1e9
	if p.Score(vec("cat", 1.0)) > 1.0001 {
		t.Error("Vectors exposed internal state")
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Theta: -0.1, Eta: 0.2, InitialStrength: 1, MaxTerms: 10},
		{Theta: 1.5, Eta: 0.2, InitialStrength: 1, MaxTerms: 10},
		{Theta: 0.1, Eta: -1, InitialStrength: 1, MaxTerms: 10},
		{Theta: 0.1, Eta: 2, InitialStrength: 1, MaxTerms: 10},
		{Theta: 0.1, Eta: 0.2, DecayC: -1, InitialStrength: 1, MaxTerms: 10},
		{Theta: 0.1, Eta: 0.2, InitialStrength: 0, MaxTerms: 10},
		{Theta: 0.1, Eta: 0.2, InitialStrength: 1, MaxTerms: 0},
		{Theta: 0.1, Eta: 0.2, InitialStrength: 1, MaxTerms: 10, MaxVectors: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

func TestNewPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on invalid options")
		}
	}()
	New(Options{Theta: -1})
}

// TestProfileInvariants property-tests MM under random feedback streams:
// profile vectors stay unit-normalized with ≤ MaxTerms terms and positive
// strength, size equals created − merged − deleted − annihilated, and
// scores stay in [0, 1].
func TestProfileInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := DefaultOptions()
		o.Theta = rng.Float64() * 0.5
		o.Eta = rng.Float64()*0.8 + 0.1
		o.MaxTerms = 5 + rng.Intn(20)
		p := New(o)
		terms := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for step := 0; step < 150; step++ {
			m := map[string]float64{}
			for _, tm := range terms {
				if rng.Float64() < 0.4 {
					m[tm] = rng.Float64() + 0.01
				}
			}
			v := vsm.FromMap(m).Normalized()
			fd := filter.Relevant
			if rng.Float64() < 0.4 {
				fd = filter.NotRelevant
			}
			p.Observe(v, fd)

			for _, pv := range p.Vectors() {
				if pv.Vec.Len() > o.MaxTerms {
					return false
				}
				if n := pv.Vec.Norm(); math.Abs(n-1) > 1e-6 {
					return false
				}
				if pv.Strength <= 0 {
					return false
				}
			}
			c := p.Counts()
			if p.ProfileSize() != c.Created-c.Merged-c.Deleted-c.Annihilated {
				return false
			}
			if s := p.Score(v); s < 0 || s > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestThetaOneMatchesNRNScores is the algebraic cross-check of Section 5.4:
// at θ = 1 with positive-only feedback on distinct documents, MM keeps one
// untouched vector per document — so its scores must equal the
// nearest-relevant-neighbour learner's exactly.
func TestThetaOneMatchesNRNScores(t *testing.T) {
	o := DefaultOptions()
	o.Theta = 1.0
	o.DisableDecay = true
	mm := New(o)
	nrn := rocchio.NewNRN()

	rng := rand.New(rand.NewSource(21))
	terms := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	randVec := func() vsm.Vector {
		m := map[string]float64{}
		for _, tm := range terms {
			if rng.Float64() < 0.4 {
				m[tm] = rng.Float64() + 0.01
			}
		}
		return vsm.FromMap(m).Normalized()
	}
	for i := 0; i < 40; i++ {
		v := randVec()
		if v.IsZero() {
			continue
		}
		mm.Observe(v, filter.Relevant)
		nrn.Observe(v, filter.Relevant)
	}
	if mm.ProfileSize() != nrn.ProfileSize() {
		t.Fatalf("sizes differ: MM %d vs NRN %d", mm.ProfileSize(), nrn.ProfileSize())
	}
	for i := 0; i < 30; i++ {
		probe := randVec()
		a, b := mm.Score(probe), nrn.Score(probe)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("probe %d: MM %v vs NRN %v", i, a, b)
		}
	}
}

func TestRegisteredLearners(t *testing.T) {
	for _, name := range []string{"MM", "MMND"} {
		l, err := filter.New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if l.Name() != name {
			t.Errorf("learner %s reports name %s", name, l.Name())
		}
	}
}
