package eval

import (
	"math"
	"testing"
)

func TestMeanAndStdDev(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	// Known value: sample stddev of {2,4,4,4,5,5,7,9} is 2.138089935...
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.1380899353) > 1e-9 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestPairedTTestKnownValue(t *testing.T) {
	// Classic worked example: differences {2,4,1,3,5} → mean 3,
	// sd ≈ 1.5811, t = 3/(1.5811/√5) ≈ 4.2426, df = 4, p ≈ 0.0132.
	a := []float64{12, 14, 11, 13, 15}
	b := []float64{10, 10, 10, 10, 10}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.T-4.242640687) > 1e-6 {
		t.Errorf("T = %v", res.T)
	}
	if res.DF != 4 {
		t.Errorf("DF = %d", res.DF)
	}
	if math.Abs(res.P-0.01324) > 5e-4 {
		t.Errorf("P = %v, want ≈ 0.0132", res.P)
	}
	if !almostEqual(res.MeanDiff, 3) {
		t.Errorf("MeanDiff = %v", res.MeanDiff)
	}
}

func TestPairedTTestSymmetry(t *testing.T) {
	a := []float64{0.7, 0.72, 0.69, 0.71}
	b := []float64{0.6, 0.66, 0.58, 0.65}
	ab, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := PairedTTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ab.T, -ba.T) || !almostEqual(ab.P, ba.P) {
		t.Errorf("not symmetric: %+v vs %+v", ab, ba)
	}
	if ab.T <= 0 {
		t.Errorf("a > b but T = %v", ab.T)
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	// Identical samples: no difference, p = 1.
	res, err := PairedTTest([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Errorf("identical samples: %+v", res)
	}
	// Constant non-zero difference: infinitely significant.
	res, err = PairedTTest([]float64{2, 3, 4}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.T, 1) || res.P != 0 {
		t.Errorf("constant difference: %+v", res)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := PairedTTest([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair accepted")
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	// Boundary values.
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	for _, x := range []float64{0.2, 0.45, 0.8} {
		l := regIncBeta(2.5, 4, x)
		r := 1 - regIncBeta(4, 2.5, 1-x)
		if math.Abs(l-r) > 1e-12 {
			t.Errorf("symmetry at %v: %v vs %v", x, l, r)
		}
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.05 {
		v := regIncBeta(3, 2, x)
		if v < prev-1e-12 {
			t.Fatalf("not monotone at %v", x)
		}
		prev = v
	}
}

func TestStudentTTwoSidedKnownQuantiles(t *testing.T) {
	// Standard t-table: with df=10, t=2.228 gives p=0.05; with df=1,
	// t=12.706 gives p=0.05.
	if got := studentTTwoSided(2.228, 10); math.Abs(got-0.05) > 1e-3 {
		t.Errorf("p(2.228, 10) = %v", got)
	}
	if got := studentTTwoSided(12.706, 1); math.Abs(got-0.05) > 1e-3 {
		t.Errorf("p(12.706, 1) = %v", got)
	}
	if got := studentTTwoSided(0, 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("p(0) = %v", got)
	}
}
