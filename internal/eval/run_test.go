package eval

import (
	"math/rand"
	"testing"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/filter"
	"mmprofile/internal/rocchio"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
)

func testDataset(t testing.TB) *corpus.Dataset {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.TopCategories = 5
	cfg.SubPerTop = 3
	cfg.PagesPerSub = 6
	cfg.MinWords = 80
	cfg.MaxWords = 150
	return corpus.Generate(cfg).Vectorize(text.NewPipeline())
}

func TestRunProducesUsefulProfile(t *testing.T) {
	ds := testDataset(t)
	train, test := ds.Split(7, 60)
	rng := rand.New(rand.NewSource(7))
	u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1)...)
	stream := sim.Stream(rng, train, len(train))

	mm := core.NewDefault()
	res := Run(mm, u, stream, test)
	if res.NIAP <= 0.3 {
		t.Errorf("trained MM niap = %v, expected clearly better than chance", res.NIAP)
	}
	if res.ProfileSize == 0 {
		t.Error("trained profile is empty")
	}
	if res.Relevant == 0 {
		t.Error("test set contains no relevant documents — workload bug")
	}
	// A random (untrained) profile must do much worse.
	empty := Evaluate(core.NewDefault(), u, test)
	if empty.NIAP >= res.NIAP {
		t.Errorf("untrained profile (%v) beat trained (%v)", empty.NIAP, res.NIAP)
	}
}

func TestRunFlushesBatch(t *testing.T) {
	ds := testDataset(t)
	train, test := ds.Split(8, 60)
	rng := rand.New(rand.NewSource(8))
	u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1)...)
	stream := sim.Stream(rng, train, len(train))

	b := rocchio.NewBatch()
	res := Run(b, u, stream, test)
	if b.Updates() != 1 {
		t.Errorf("batch updates = %d, want exactly 1 flush", b.Updates())
	}
	if res.ProfileSize != 1 {
		t.Errorf("batch profile size = %d", res.ProfileSize)
	}
	if res.NIAP <= 0.2 {
		t.Errorf("batch niap = %v, suspiciously low", res.NIAP)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	ds := testDataset(t)
	_, test := ds.Split(9, 60)
	u := sim.NewUser(corpus.Category{Top: 0, Sub: -1})
	l := core.NewDefault() // empty profile: every score is 0 → all ties
	a := Rank(l, u, test)
	b := Rank(l, u, test)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-broken ranking not deterministic")
		}
	}
}

func TestEvaluateDoesNotMutateProfile(t *testing.T) {
	ds := testDataset(t)
	train, test := ds.Split(10, 60)
	rng := rand.New(rand.NewSource(10))
	u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1)...)
	mm := core.NewDefault()
	Train(mm, u, sim.Stream(rng, train, len(train)))
	before := mm.Counts()
	r1 := Evaluate(mm, u, test)
	r2 := Evaluate(mm, u, test)
	if mm.Counts() != before {
		t.Error("Evaluate mutated the profile")
	}
	if r1.NIAP != r2.NIAP || r1.ProfileSize != r2.ProfileSize {
		t.Error("repeated evaluation differs")
	}
}

func TestCurveShape(t *testing.T) {
	ds := testDataset(t)
	train, test := ds.Split(11, 60)
	rng := rand.New(rand.NewSource(11))
	u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1)...)
	stream := sim.Stream(rng, train, 50)

	pts := Curve(core.NewDefault(), u, stream, test, CurveConfig{Every: 10})
	// Checkpoints: 0, 10, 20, 30, 40, 50.
	if len(pts) != 6 {
		t.Fatalf("curve has %d points: %+v", len(pts), pts)
	}
	if pts[0].Seen != 0 || pts[len(pts)-1].Seen != 50 {
		t.Errorf("checkpoint boundaries: %+v", pts)
	}
	if pts[0].NIAP >= pts[len(pts)-1].NIAP {
		t.Errorf("no learning visible: %v -> %v", pts[0].NIAP, pts[len(pts)-1].NIAP)
	}
}

func TestCurveOnStepShift(t *testing.T) {
	ds := testDataset(t)
	train, test := ds.Split(12, 60)
	rng := rand.New(rand.NewSource(12))
	shift := sim.PartialShift(rng, ds)
	u := sim.NewUser()
	stream := sim.Stream(rng, train, 40)
	var calls int
	Curve(core.NewDefault(), u, stream, test, CurveConfig{
		Every: 10,
		OnStep: func(step int) {
			calls++
			shift.Apply(u, step, 20)
		},
	})
	if calls != len(stream) {
		t.Errorf("OnStep called %d times, want %d", calls, len(stream))
	}
	// After the run the user must hold the post-shift interests.
	if u.Relevant(corpus.Category{Top: shift.Before[1].Top, Sub: 0}) {
		t.Error("user interests not shifted")
	}
}

func TestCurveRGNotFlushedAtCheckpoints(t *testing.T) {
	ds := testDataset(t)
	train, test := ds.Split(13, 60)
	rng := rand.New(rand.NewSource(13))
	u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1)...)
	stream := sim.Stream(rng, train, 25)
	rg := rocchio.NewRG(10)
	Curve(rg, u, stream, test, CurveConfig{Every: 5})
	// 25 docs, group 10 → exactly 2 updates; the 5 pending must remain.
	if rg.Updates() != 2 {
		t.Errorf("RG updates = %d, want 2 (checkpoints must not flush)", rg.Updates())
	}
	if rg.Pending() != 5 {
		t.Errorf("RG pending = %d, want 5", rg.Pending())
	}
}

func TestRecoveryTime(t *testing.T) {
	curve := []CurvePoint{
		{Seen: 0, NIAP: 0.1},
		{Seen: 100, NIAP: 0.6},
		{Seen: 200, NIAP: 0.6}, // shift happens at 200
		{Seen: 300, NIAP: 0.3},
		{Seen: 400, NIAP: 0.5},
		{Seen: 500, NIAP: 0.62},
	}
	// Full recovery (tolerance 1.0) happens at 500 → 300 docs after shift.
	if got := RecoveryTime(curve, 200, 1.0); got != 300 {
		t.Errorf("RecoveryTime(1.0) = %d, want 300", got)
	}
	// 80% recovery (target 0.48) happens at 400 → 200 docs.
	if got := RecoveryTime(curve, 200, 0.8); got != 200 {
		t.Errorf("RecoveryTime(0.8) = %d, want 200", got)
	}
	// Never recovers within range.
	if got := RecoveryTime(curve[:5], 200, 1.0); got != -1 {
		t.Errorf("unrecovered = %d, want -1", got)
	}
	// Shift before the first checkpoint.
	if got := RecoveryTime(curve, -10, 1.0); got != 0 {
		t.Errorf("pre-range shift = %d, want 0", got)
	}
}

func TestAverageCurves(t *testing.T) {
	a := []CurvePoint{{Seen: 0, NIAP: 0.2, ProfileSize: 2}, {Seen: 10, NIAP: 0.4, ProfileSize: 4}}
	b := []CurvePoint{{Seen: 0, NIAP: 0.4, ProfileSize: 4}, {Seen: 10, NIAP: 0.6, ProfileSize: 5}}
	avg := AverageCurves([][]CurvePoint{a, b})
	if len(avg) != 2 {
		t.Fatalf("avg length %d", len(avg))
	}
	if !almostEqual(avg[0].NIAP, 0.3) || !almostEqual(avg[1].NIAP, 0.5) {
		t.Errorf("avg niap: %+v", avg)
	}
	if avg[0].ProfileSize != 3 {
		t.Errorf("avg size: %+v", avg)
	}
	if AverageCurves(nil) != nil {
		t.Error("AverageCurves(nil) != nil")
	}
}

func TestAverageCurvesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AverageCurves([][]CurvePoint{
		{{Seen: 0}},
		{{Seen: 0}, {Seen: 10}},
	})
}

// TestLearnerComparisonSanity trains every registered learner on the same
// single-category workload and checks they all beat an untrained profile —
// an integration smoke test across core, rocchio, sim, and eval.
func TestLearnerComparisonSanity(t *testing.T) {
	ds := testDataset(t)
	train, test := ds.Split(14, 70)
	rng := rand.New(rand.NewSource(14))
	u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1)...)
	stream := sim.Stream(rng, train, len(train))

	for _, name := range filter.Names() {
		l, err := filter.New(name)
		if err != nil {
			t.Fatal(err)
		}
		res := Run(l, u, stream, test)
		if res.NIAP <= 0.25 {
			t.Errorf("%s: niap = %.3f, expected real learning", name, res.NIAP)
		}
	}
}
