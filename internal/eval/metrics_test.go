package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNIAPPaperExample(t *testing.T) {
	// The paper's worked example (Section 4.3): three relevant documents at
	// ranks 2, 4, 6 → niap = (1/2 + 2/4 + 3/6)/3 = 0.5.
	flags := []bool{false, true, false, true, false, true}
	if got := NIAP(flags); !almostEqual(got, 0.5) {
		t.Errorf("NIAP = %v, want 0.5", got)
	}
}

func TestNIAPPerfectRanking(t *testing.T) {
	flags := []bool{true, true, true, false, false}
	if got := NIAP(flags); !almostEqual(got, 1.0) {
		t.Errorf("perfect ranking NIAP = %v", got)
	}
}

func TestNIAPWorstRanking(t *testing.T) {
	// Relevant documents at the very bottom of a length-6 list.
	flags := []bool{false, false, false, false, true, true}
	want := (1.0/5 + 2.0/6) / 2
	if got := NIAP(flags); !almostEqual(got, want) {
		t.Errorf("NIAP = %v, want %v", got, want)
	}
}

func TestNIAPNoRelevant(t *testing.T) {
	if got := NIAP([]bool{false, false}); got != 0 {
		t.Errorf("NIAP with no relevant docs = %v", got)
	}
	if got := NIAP(nil); got != 0 {
		t.Errorf("NIAP(nil) = %v", got)
	}
}

func TestNIAPBounds(t *testing.T) {
	// Property: niap ∈ [0,1], equals 1 iff all relevant docs come first.
	f := func(pattern []bool) bool {
		v := NIAP(pattern)
		if v < 0 || v > 1+1e-12 {
			return false
		}
		sorted := true
		seenIrrelevant := false
		any := false
		for _, r := range pattern {
			if r {
				any = true
				if seenIrrelevant {
					sorted = false
				}
			} else {
				seenIrrelevant = true
			}
		}
		if any && sorted && !almostEqual(v, 1) {
			return false
		}
		if any && !sorted && v >= 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMetricsBundle(t *testing.T) {
	// 3 relevant docs at ranks 1, 3, 6 in a list of 10.
	flags := []bool{true, false, true, false, false, true, false, false, false, false}
	m := Metrics(flags)
	if m.Relevant != 3 {
		t.Errorf("Relevant = %d", m.Relevant)
	}
	if !almostEqual(m.NIAP, NIAP(flags)) {
		t.Errorf("NIAP mismatch")
	}
	if !almostEqual(m.PrecisionAt[5], 0.4) {
		t.Errorf("P@5 = %v", m.PrecisionAt[5])
	}
	if !almostEqual(m.PrecisionAt[10], 0.3) {
		t.Errorf("P@10 = %v", m.PrecisionAt[10])
	}
	// R-precision: precision at rank 3 = 2/3.
	if !almostEqual(m.RPrecision, 2.0/3) {
		t.Errorf("RPrecision = %v", m.RPrecision)
	}
	for _, k := range []int{5, 10, 20, 30, 100} {
		if _, ok := m.PrecisionAt[k]; !ok {
			t.Errorf("missing cutoff %d", k)
		}
	}
	empty := Metrics(nil)
	if empty.Relevant != 0 || empty.NIAP != 0 || empty.RPrecision != 0 {
		t.Errorf("empty metrics: %+v", empty)
	}
}

func TestPrecisionAtK(t *testing.T) {
	flags := []bool{true, false, true, true}
	if got := PrecisionAtK(flags, 2); !almostEqual(got, 0.5) {
		t.Errorf("P@2 = %v", got)
	}
	if got := PrecisionAtK(flags, 4); !almostEqual(got, 0.75) {
		t.Errorf("P@4 = %v", got)
	}
	if got := PrecisionAtK(flags, 10); !almostEqual(got, 0.75) {
		t.Errorf("P@10 (clamped) = %v", got)
	}
	if got := PrecisionAtK(flags, 0); got != 0 {
		t.Errorf("P@0 = %v", got)
	}
	if got := PrecisionAtK(nil, 5); got != 0 {
		t.Errorf("P@5 on empty list = %v", got)
	}
}

func TestRecallAtK(t *testing.T) {
	flags := []bool{true, false, true, false, true}
	if got := RecallAtK(flags, 1); !almostEqual(got, 1.0/3) {
		t.Errorf("R@1 = %v", got)
	}
	if got := RecallAtK(flags, 5); !almostEqual(got, 1.0) {
		t.Errorf("R@5 = %v", got)
	}
	if got := RecallAtK([]bool{false}, 1); got != 0 {
		t.Errorf("recall with no relevant docs = %v", got)
	}
	if got := RecallAtK(flags, -3); got != 0 {
		t.Errorf("R@-3 = %v", got)
	}
}
