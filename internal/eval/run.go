package eval

import (
	"sort"

	"mmprofile/internal/corpus"
	"mmprofile/internal/filter"
	"mmprofile/internal/sim"
)

// Flusher is implemented by learners that buffer judgments (group and batch
// Rocchio); the evaluator flushes them when training completes so that
// batch mode applies its single update before scoring.
type Flusher interface {
	Flush()
}

// Result is the outcome of evaluating a frozen profile on a test set.
type Result struct {
	// NIAP is the paper's headline metric.
	NIAP float64
	// PrecisionAt10 / RecallAt10 supplement niap for reporting.
	PrecisionAt10 float64
	RecallAt10    float64
	// ProfileSize is the number of vectors in the learner's profile at
	// evaluation time, the metric of Figure 7.
	ProfileSize int
	// Relevant is the number of test documents relevant to the user.
	Relevant int
}

// Train presents the stream to the learner with the user's judgments, the
// training phase of the paper's protocol.
func Train(l filter.Learner, u sim.Oracle, stream []corpus.Document) {
	for _, d := range stream {
		l.Observe(d.Vec, u.Feedback(d))
	}
}

// Rank orders the test documents by the learner's predicted relevance,
// highest first (ties broken by document id for determinism), and returns
// the relevance flag of each position.
func Rank(l filter.Learner, u sim.Oracle, test []corpus.Document) []bool {
	type scored struct {
		score float64
		id    int
		rel   bool
	}
	rows := make([]scored, len(test))
	for i, d := range test {
		rows[i] = scored{score: l.Score(d.Vec), id: d.ID, rel: u.Relevant(d.Cat)}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].score != rows[j].score {
			return rows[i].score > rows[j].score
		}
		return rows[i].id < rows[j].id
	})
	flags := make([]bool, len(rows))
	for i, r := range rows {
		flags[i] = r.rel
	}
	return flags
}

// Evaluate scores and rank-orders the test set with the learner's current
// (frozen) profile and computes the effectiveness metrics. Scoring does
// not modify the profile.
func Evaluate(l filter.Learner, u sim.Oracle, test []corpus.Document) Result {
	flags := Rank(l, u, test)
	rel := 0
	for _, f := range flags {
		if f {
			rel++
		}
	}
	return Result{
		NIAP:          NIAP(flags),
		PrecisionAt10: PrecisionAtK(flags, 10),
		RecallAt10:    RecallAtK(flags, 10),
		ProfileSize:   l.ProfileSize(),
		Relevant:      rel,
	}
}

// Run executes the full protocol: reset, train on the stream, flush any
// buffered judgments (batch Rocchio's single update), freeze, evaluate.
func Run(l filter.Learner, u sim.Oracle, stream, test []corpus.Document) Result {
	l.Reset()
	Train(l, u, stream)
	if f, ok := l.(Flusher); ok {
		f.Flush()
	}
	return Evaluate(l, u, test)
}
