// Package eval implements the paper's evaluation methodology (Section 4.3),
// modelled on the TREC routing track: a learner is trained on a judged
// stream, its profile frozen, and the frozen profile used to rank the test
// collection; effectiveness is reported as non-interpolated average
// precision (niap). The package also produces the learning curves of the
// Section 5.5 interest-shift experiments.
package eval

// NIAP computes non-interpolated average precision over a ranked list:
// relevance flags ordered from the highest-scored document downward.
// With the i-th relevant document (1-based) at rank r_i (1-based),
// niap = (1/T)·Σ_i i/r_i where T is the total number of relevant documents
// in the list. It is 0 when the list contains no relevant document.
func NIAP(rankedRelevance []bool) float64 {
	var sum float64
	found := 0
	total := 0
	for rank, rel := range rankedRelevance {
		if rel {
			total++
			found++
			sum += float64(found) / float64(rank+1)
		}
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// PrecisionAtK returns the fraction of the top k ranked documents that are
// relevant. k is clamped to the list length; k ≤ 0 returns 0.
func PrecisionAtK(rankedRelevance []bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(rankedRelevance) {
		k = len(rankedRelevance)
	}
	if k == 0 {
		return 0
	}
	rel := 0
	for _, r := range rankedRelevance[:k] {
		rel++
		if !r {
			rel--
		}
	}
	return float64(rel) / float64(k)
}

// RankedMetrics is the TREC-style metric bundle for one ranked list.
type RankedMetrics struct {
	NIAP        float64
	PrecisionAt map[int]float64 // at the standard cutoffs 5/10/20/30/100
	RPrecision  float64         // precision at rank R, R = #relevant
	Relevant    int
}

// standardCutoffs are the TREC reporting points.
var standardCutoffs = []int{5, 10, 20, 30, 100}

// Metrics computes the full bundle over a ranked relevance list.
func Metrics(rankedRelevance []bool) RankedMetrics {
	m := RankedMetrics{
		NIAP:        NIAP(rankedRelevance),
		PrecisionAt: make(map[int]float64, len(standardCutoffs)),
	}
	for _, rel := range rankedRelevance {
		if rel {
			m.Relevant++
		}
	}
	for _, k := range standardCutoffs {
		m.PrecisionAt[k] = PrecisionAtK(rankedRelevance, k)
	}
	m.RPrecision = PrecisionAtK(rankedRelevance, m.Relevant)
	return m
}

// RecallAtK returns the fraction of all relevant documents found in the top
// k. It is 0 when the list has no relevant documents.
func RecallAtK(rankedRelevance []bool, k int) float64 {
	if k < 0 {
		k = 0
	}
	if k > len(rankedRelevance) {
		k = len(rankedRelevance)
	}
	total, found := 0, 0
	for i, r := range rankedRelevance {
		if r {
			total++
			if i < k {
				found++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(found) / float64(total)
}
