package eval_test

import (
	"fmt"

	"mmprofile/internal/eval"
)

// ExampleNIAP reproduces the paper's worked example (Section 4.3): three
// relevant documents ranked at positions 2, 4, and 6 give niap 0.5.
func ExampleNIAP() {
	ranked := []bool{false, true, false, true, false, true}
	fmt.Printf("niap = %.1f\n", eval.NIAP(ranked))
	// Output:
	// niap = 0.5
}

// ExamplePairedTTest shows how the harness decides whether a gap between
// two learners across seeded runs is real.
func ExamplePairedTTest() {
	mm := []float64{0.74, 0.71, 0.76, 0.72, 0.75}
	ri := []float64{0.55, 0.51, 0.58, 0.54, 0.52}
	res, err := eval.PairedTTest(mm, ri)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean diff %+.2f, significant at 5%%: %v\n", res.MeanDiff, res.P < 0.05)
	// Output:
	// mean diff +0.20, significant at 5%: true
}
