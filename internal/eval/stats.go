package eval

import (
	"fmt"
	"math"
)

// Summary statistics and a paired significance test for the seeded-run
// averages the harness reports (the paper averages "at least four runs";
// the t-test quantifies when a gap between learners on paired workloads is
// real rather than seed noise).

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator); 0 for
// fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// TTestResult reports a paired two-sided Student's t-test.
type TTestResult struct {
	// MeanDiff is mean(a−b).
	MeanDiff float64
	// T is the t statistic; positive when a tends to exceed b.
	T float64
	// DF is the degrees of freedom (n−1).
	DF int
	// P is the two-sided p-value.
	P float64
}

// PairedTTest tests whether paired samples a and b (same length ≥ 2, same
// workload per index) differ in mean. A zero-variance, zero-difference
// pairing returns P = 1.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, fmt.Errorf("eval: paired samples of different length (%d vs %d)", len(a), len(b))
	}
	if len(a) < 2 {
		return TTestResult{}, fmt.Errorf("eval: need at least 2 pairs, got %d", len(a))
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	md := Mean(diffs)
	sd := StdDev(diffs)
	n := float64(len(diffs))
	res := TTestResult{MeanDiff: md, DF: len(diffs) - 1}
	if sd == 0 {
		if md == 0 {
			res.P = 1
			return res, nil
		}
		res.T = math.Inf(sign(md))
		res.P = 0
		return res, nil
	}
	res.T = md / (sd / math.Sqrt(n))
	res.P = studentTTwoSided(res.T, float64(res.DF))
	return res, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTTwoSided returns the two-sided p-value of a t statistic with df
// degrees of freedom: P = I_{df/(df+t²)}(df/2, 1/2), the regularized
// incomplete beta identity.
func studentTTwoSided(t, df float64) float64 {
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// via the standard continued-fraction expansion (Numerical Recipes betacf
// form), accurate to ~1e-12 over the domain used here.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
