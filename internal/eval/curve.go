package eval

import (
	"mmprofile/internal/corpus"
	"mmprofile/internal/filter"
	"mmprofile/internal/sim"
)

// CurvePoint is one checkpoint of a learning curve: effectiveness of the
// profile after Seen training documents, measured against the user's
// interests at that moment.
type CurvePoint struct {
	Seen        int
	NIAP        float64
	ProfileSize int
}

// CurveConfig controls learning-curve generation.
type CurveConfig struct {
	// Every is the checkpoint interval in documents (default 20).
	Every int
	// OnStep, when set, runs before document step (0-based) is presented;
	// interest-shift scenarios mutate the user here.
	OnStep func(step int)
}

// Curve presents the stream one document at a time and, at every
// checkpoint, scores the test set with the profile as it stands (the
// profile is "frozen" for the measurement simply by not being given
// judgments — scoring never mutates it). The learner is reset first.
// Buffered learners (RG) are deliberately NOT flushed at checkpoints: the
// paper's Figure 8 discussion relies on RG waiting for a full group.
func Curve(l filter.Learner, u sim.Oracle, stream, test []corpus.Document, cfg CurveConfig) []CurvePoint {
	every := cfg.Every
	if every <= 0 {
		every = 20
	}
	l.Reset()
	var points []CurvePoint
	record := func(seen int) {
		r := Evaluate(l, u, test)
		points = append(points, CurvePoint{Seen: seen, NIAP: r.NIAP, ProfileSize: r.ProfileSize})
	}
	if cfg.OnStep != nil {
		cfg.OnStep(0)
	}
	record(0)
	for i, d := range stream {
		if cfg.OnStep != nil && i > 0 {
			cfg.OnStep(i)
		}
		l.Observe(d.Vec, u.Feedback(d))
		if (i+1)%every == 0 || i == len(stream)-1 {
			record(i + 1)
		}
	}
	return points
}

// RecoveryTime summarizes an interest-shift curve the way the paper's
// Section 5.5 discussion does ("regain the precision that they had at the
// shift point"): it returns how many documents past the shift the learner
// needed before its niap climbed back to the level it held at the shift
// point, scaled by tolerance (e.g. 0.95 = recover 95% of it). It returns
// −1 when the curve never recovers within its range, and 0 when the shift
// point precedes the first checkpoint.
func RecoveryTime(curve []CurvePoint, shiftAt int, tolerance float64) int {
	atShift := 0.0
	found := false
	for _, p := range curve {
		if p.Seen <= shiftAt {
			atShift = p.NIAP
			found = true
		}
	}
	if !found {
		return 0
	}
	target := atShift * tolerance
	for _, p := range curve {
		if p.Seen <= shiftAt {
			continue
		}
		if p.NIAP >= target {
			return p.Seen - shiftAt
		}
	}
	return -1
}

// AverageCurves averages several same-shape curves point-wise (the paper
// averages at least four randomly seeded runs). It panics on mismatched
// shapes, which indicate a harness bug.
func AverageCurves(curves [][]CurvePoint) []CurvePoint {
	if len(curves) == 0 {
		return nil
	}
	n := len(curves[0])
	out := make([]CurvePoint, n)
	for _, c := range curves {
		if len(c) != n {
			panic("eval: mismatched curve lengths")
		}
		for i, p := range c {
			if c[0].Seen != curves[0][0].Seen || p.Seen != curves[0][i].Seen {
				panic("eval: mismatched curve checkpoints")
			}
			out[i].Seen = p.Seen
			out[i].NIAP += p.NIAP
			out[i].ProfileSize += p.ProfileSize
		}
	}
	for i := range out {
		out[i].NIAP /= float64(len(curves))
		out[i].ProfileSize = (out[i].ProfileSize + len(curves)/2) / len(curves)
	}
	return out
}
