package sched_test

import (
	"fmt"

	"mmprofile/internal/sched"
)

// Example builds a broadcast-disk schedule over skewed demand and compares
// its expected wait with profile-blind round-robin.
func Example() {
	items := []sched.Item{
		{ID: 0, Demand: 16}, // hot
		{ID: 1, Demand: 16},
		{ID: 2, Demand: 1}, // cold
		{ID: 3, Demand: 1},
		{ID: 4, Demand: 1},
		{ID: 5, Demand: 1},
	}
	disk, err := sched.Build(items, sched.Config{Disks: 2, MaxFrequency: 4})
	if err != nil {
		panic(err)
	}
	flat := sched.FlatSchedule(items)
	fmt.Printf("hot item frequency: %d per cycle (flat: %d)\n", disk.Frequency(0), flat.Frequency(0))
	fmt.Printf("broadcast-disk beats flat: %v\n",
		disk.ExpectedLatency(items) < flat.ExpectedLatency(items))
	// Output:
	// hot item frequency: 3 per cycle (flat: 1)
	// broadcast-disk beats flat: true
}
