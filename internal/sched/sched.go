// Package sched implements profile-driven broadcast scheduling — the use
// the paper's opening sentence gives user profiles: "making scheduling,
// bandwidth allocation, and routing decisions" in push-based delivery.
//
// The scheduler is the classic broadcast-disk construction (Acharya,
// Alonso, Franklin, Zdonik, SIGMOD '95): items are partitioned into
// "disks" by demand, each disk spins at a relative frequency derived from
// its demand (the square-root rule, which minimizes expected wait), disks
// are split into chunks, and chunks are interleaved into minor cycles to
// produce one periodic schedule with evenly spaced repetitions of every
// item. Demand comes from aggregating subscriber profiles (see
// examples/broadcast).
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Item is one broadcastable unit (a page, a bucket of pages) with the
// aggregate demand subscriber profiles assign to it.
type Item struct {
	ID     int64
	Demand float64
}

// Config controls schedule construction.
type Config struct {
	// Disks is the number of popularity tiers (≥ 1). More disks track the
	// demand skew more closely at the cost of a longer period.
	Disks int
	// MaxFrequency caps a disk's relative frequency, bounding the
	// schedule's period (0 = default 8).
	MaxFrequency int
}

// DefaultConfig returns a 3-disk configuration with frequency cap 8.
func DefaultConfig() Config { return Config{Disks: 3, MaxFrequency: 8} }

// Schedule is a periodic broadcast program: Slots lists the item broadcast
// in each time slot of one period.
type Schedule struct {
	Slots []int64
	// freq maps item id → broadcasts per period.
	freq map[int64]int
}

// Build constructs a broadcast-disk schedule for the items. Items with
// non-positive demand are treated as demand 0 (they still get broadcast,
// on the slowest disk). It fails on empty input or bad configuration.
func Build(items []Item, cfg Config) (*Schedule, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("sched: no items")
	}
	if cfg.Disks < 1 {
		return nil, fmt.Errorf("sched: need at least one disk, got %d", cfg.Disks)
	}
	if cfg.MaxFrequency <= 0 {
		cfg.MaxFrequency = 8
	}
	disks := cfg.Disks
	if disks > len(items) {
		disks = len(items)
	}

	// Hottest first; stable on id for determinism.
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Demand != sorted[j].Demand {
			return sorted[i].Demand > sorted[j].Demand
		}
		return sorted[i].ID < sorted[j].ID
	})

	// Equal-count tiers.
	tiers := make([][]Item, disks)
	for i, it := range sorted {
		d := i * disks / len(sorted)
		tiers[d] = append(tiers[d], it)
	}

	// Square-root rule: relative frequency ∝ √(mean demand of tier),
	// normalized so the coldest tier with any demand spins once, capped,
	// and ≥ 1. Tiers whose demand is entirely zero stay at frequency 1
	// (everything must still be broadcast).
	freqs := make([]int, disks)
	base := 0.0
	for i := disks - 1; i >= 0; i-- {
		if m := meanDemand(tiers[i]); m > 0 {
			base = math.Sqrt(m) // tier means are non-increasing, so this is the smallest positive one
			break
		}
	}
	for i, tier := range tiers {
		f := 1.0
		if m := meanDemand(tier); m > 0 && base > 0 {
			f = math.Sqrt(m) / base
		}
		fi := int(math.Round(f))
		if fi < 1 {
			fi = 1
		}
		if fi > cfg.MaxFrequency {
			fi = cfg.MaxFrequency
		}
		freqs[i] = fi
	}

	// Interleave: maxChunks = lcm(freqs); disk i is split into
	// maxChunks/freqs[i] chunks; minor cycle j broadcasts chunk
	// (j mod numChunks_i) of every disk.
	maxChunks := 1
	for _, f := range freqs {
		maxChunks = lcm(maxChunks, f)
	}
	chunks := make([][][]Item, disks)
	for i, tier := range tiers {
		n := maxChunks / freqs[i]
		chunks[i] = splitChunks(tier, n)
	}

	s := &Schedule{freq: make(map[int64]int, len(items))}
	for j := 0; j < maxChunks; j++ {
		for i := 0; i < disks; i++ {
			chunk := chunks[i][j%len(chunks[i])]
			for _, it := range chunk {
				s.Slots = append(s.Slots, it.ID)
				s.freq[it.ID]++
			}
		}
	}
	return s, nil
}

func meanDemand(items []Item) float64 {
	if len(items) == 0 {
		return 0
	}
	var sum float64
	for _, it := range items {
		if it.Demand > 0 {
			sum += it.Demand
		}
	}
	return sum / float64(len(items))
}

// splitChunks partitions items into n nearly equal chunks (n ≥ 1; chunks
// may be empty only when n > len(items)).
func splitChunks(items []Item, n int) [][]Item {
	out := make([][]Item, n)
	for i := range out {
		lo := i * len(items) / n
		hi := (i + 1) * len(items) / n
		out[i] = items[lo:hi]
	}
	return out
}

// Period returns the schedule length in slots.
func (s *Schedule) Period() int { return len(s.Slots) }

// Frequency returns how many times an item appears per period.
func (s *Schedule) Frequency(id int64) int { return s.freq[id] }

// ExpectedLatency returns the demand-weighted mean wait, in slots, for a
// request arriving at a uniformly random point in the cycle: for each
// item, the mean over the cycle of the distance to its next broadcast,
// weighted by the item's demand share. Items never broadcast (impossible
// by construction) would make the latency infinite.
func (s *Schedule) ExpectedLatency(items []Item) float64 {
	var totalDemand, weighted float64
	for _, it := range items {
		d := it.Demand
		if d <= 0 {
			continue
		}
		totalDemand += d
		weighted += d * s.meanWait(it.ID)
	}
	if totalDemand == 0 {
		return 0
	}
	return weighted / totalDemand
}

// meanWait computes the exact mean distance to the next broadcast of id
// over all cycle positions: with gaps g_1..g_k between consecutive
// broadcasts (Σg = period), the mean is Σ g_i·(g_i+1) / (2·period).
func (s *Schedule) meanWait(id int64) float64 {
	period := len(s.Slots)
	positions := make([]int, 0, s.freq[id])
	for p, slot := range s.Slots {
		if slot == id {
			positions = append(positions, p)
		}
	}
	if len(positions) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i, p := range positions {
		next := positions[(i+1)%len(positions)]
		gap := next - p
		if gap <= 0 {
			gap += period
		}
		// A request landing in any of the gap slots before the broadcast
		// waits gap, gap−1, …, 1 slots respectively.
		sum += float64(gap) * float64(gap+1) / 2
	}
	return sum / float64(period)
}

// FlatSchedule returns the round-robin baseline: every item once per
// period, in id order — what a push server does without profile-derived
// demand knowledge.
func FlatSchedule(items []Item) *Schedule {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	s := &Schedule{freq: make(map[int64]int, len(sorted))}
	for _, it := range sorted {
		s.Slots = append(s.Slots, it.ID)
		s.freq[it.ID] = 1
	}
	return s
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
