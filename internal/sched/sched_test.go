package sched

import (
	"math"
	"math/rand"
	"testing"
)

// zipfItems builds n items with Zipf-skewed demand.
func zipfItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: int64(i), Demand: 1 / float64(i+1)}
	}
	return items
}

func TestBuildCoversEveryItem(t *testing.T) {
	items := zipfItems(30)
	s, err := Build(items, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if s.Frequency(it.ID) < 1 {
			t.Errorf("item %d never broadcast", it.ID)
		}
	}
	// Slot count equals the sum of frequencies.
	var total int
	for _, it := range items {
		total += s.Frequency(it.ID)
	}
	if total != s.Period() {
		t.Errorf("period %d != Σfreq %d", s.Period(), total)
	}
}

func TestHotterItemsBroadcastMoreOften(t *testing.T) {
	items := zipfItems(30)
	s, err := Build(items, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hottest := s.Frequency(0)
	coldest := s.Frequency(29)
	if hottest <= coldest {
		t.Errorf("hottest freq %d not above coldest %d", hottest, coldest)
	}
}

func TestBroadcastDiskBeatsFlatOnSkewedDemand(t *testing.T) {
	items := zipfItems(60)
	bd, err := Build(items, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	flat := FlatSchedule(items)
	bdLat := bd.ExpectedLatency(items)
	flatLat := flat.ExpectedLatency(items)
	// Latency is in slots; normalize by period to compare fairly? No —
	// expected wait in slots is the user-visible metric; the broadcast-disk
	// schedule has a longer period but hot items come around sooner.
	if bdLat >= flatLat {
		t.Errorf("broadcast disk (%.2f slots) not better than flat (%.2f slots)", bdLat, flatLat)
	}
	t.Logf("expected wait: flat %.2f, broadcast-disk %.2f (%.0f%% better)",
		flatLat, bdLat, 100*(1-bdLat/flatLat))
}

func TestUniformDemandDegeneratesToFlat(t *testing.T) {
	items := make([]Item, 20)
	for i := range items {
		items[i] = Item{ID: int64(i), Demand: 1}
	}
	s, err := Build(items, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With uniform demand every disk gets frequency 1 → every item once.
	for _, it := range items {
		if s.Frequency(it.ID) != 1 {
			t.Errorf("item %d frequency %d under uniform demand", it.ID, s.Frequency(it.ID))
		}
	}
	flat := FlatSchedule(items)
	if math.Abs(s.ExpectedLatency(items)-flat.ExpectedLatency(items)) > 1e-9 {
		t.Error("uniform-demand schedule latency differs from flat")
	}
}

func TestExpectedLatencyMatchesSimulation(t *testing.T) {
	items := zipfItems(25)
	s, err := Build(items, Config{Disks: 3, MaxFrequency: 4})
	if err != nil {
		t.Fatal(err)
	}
	analytic := s.ExpectedLatency(items)

	// Monte-Carlo: draw requests from the demand distribution and uniform
	// cycle positions; wait until the item next appears.
	rng := rand.New(rand.NewSource(1))
	var cdf []float64
	var total float64
	for _, it := range items {
		total += it.Demand
		cdf = append(cdf, total)
	}
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		u := rng.Float64() * total
		k := 0
		for cdf[k] < u {
			k++
		}
		id := items[k].ID
		pos := rng.Intn(s.Period())
		wait := 1
		for s.Slots[(pos+wait-1)%s.Period()] != id {
			wait++
		}
		sum += float64(wait)
	}
	simulated := sum / n
	if math.Abs(simulated-analytic) > 0.05*analytic {
		t.Errorf("analytic %.3f vs simulated %.3f", analytic, simulated)
	}
}

func TestBuildSingleDiskAndSingleItem(t *testing.T) {
	s, err := Build([]Item{{ID: 7, Demand: 3}}, Config{Disks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Period() != 1 || s.Slots[0] != 7 {
		t.Errorf("single item schedule: %+v", s.Slots)
	}
	s, err = Build(zipfItems(10), Config{Disks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Period() != 10 {
		t.Errorf("single disk period %d", s.Period())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, DefaultConfig()); err == nil {
		t.Error("empty items accepted")
	}
	if _, err := Build(zipfItems(3), Config{Disks: 0}); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	items := zipfItems(40)
	a, _ := Build(items, DefaultConfig())
	b, _ := Build(items, DefaultConfig())
	if len(a.Slots) != len(b.Slots) {
		t.Fatal("periods differ")
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			t.Fatal("schedules differ between identical builds")
		}
	}
}

func TestZeroAndNegativeDemand(t *testing.T) {
	items := []Item{{ID: 0, Demand: 5}, {ID: 1, Demand: 0}, {ID: 2, Demand: -1}}
	s, err := Build(items, Config{Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if s.Frequency(it.ID) < 1 {
			t.Errorf("item %d with demand %v never broadcast", it.ID, it.Demand)
		}
	}
	// Zero total demand latency is defined as 0.
	flat := FlatSchedule([]Item{{ID: 0, Demand: 0}})
	if got := flat.ExpectedLatency([]Item{{ID: 0, Demand: 0}}); got != 0 {
		t.Errorf("zero-demand latency = %v", got)
	}
}

func TestMeanWaitEvenlySpaced(t *testing.T) {
	// Item appearing every 4th slot of a 8-slot cycle: gaps of 4 and 4;
	// mean wait = (4·5/2 + 4·5/2)/8 = 2.5.
	s := &Schedule{Slots: []int64{1, 0, 0, 0, 1, 0, 0, 0}, freq: map[int64]int{1: 2, 0: 6}}
	if got := s.meanWait(1); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("meanWait = %v, want 2.5", got)
	}
	if got := s.meanWait(99); !math.IsInf(got, 1) {
		t.Errorf("absent item meanWait = %v", got)
	}
}
