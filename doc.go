// Package mmprofile is a reproduction of "Self-Adaptive User Profiles for
// Large-Scale Data Delivery" (Çetintemel, Franklin, Giles; ICDE 2000).
//
// The module implements the paper's Multi-Modal (MM) profile-learning
// algorithm together with every substrate the paper depends on: a vector-
// space text model, a web-page processing pipeline, Rocchio-family baseline
// learners, a synthetic Yahoo!-style document collection, a TREC-routing
// evaluation framework, and a push-based dissemination (publish/subscribe)
// engine with an inverted profile index.
//
// Library code lives under internal/; runnable entry points under cmd/ and
// examples/. The root package exists to host the per-figure benchmark suite
// (bench_test.go) and module documentation.
package mmprofile
