module mmprofile

go 1.22
