// Newsfilter: a simulated personalized news feed with drifting interests.
//
// A reader follows two topics; midway through the stream she drops one and
// picks up another. The example runs the self-adaptive MM profile and an
// incremental-Rocchio profile side by side on the identical stream and
// prints rolling precision, showing MM recovering from the shift faster —
// the paper's Figure 8 scenario as a live application.
//
//	go run ./examples/newsfilter
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/eval"
	"mmprofile/internal/filter"
	"mmprofile/internal/rocchio"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
)

const (
	streamLen  = 500
	shiftPoint = 250
	window     = 50 // checkpoint interval
)

func main() {
	// The "news wire" is the synthetic Yahoo!-style collection presented
	// in random order.
	ds := corpus.Generate(corpus.DefaultConfig()).Vectorize(text.NewPipeline())
	rng := rand.New(rand.NewSource(42))
	train, test := ds.Split(rng.Int63(), 500)
	stream := sim.Stream(rng, train, streamLen)

	// Interests: {C1, C4} before the shift, {C1, C8} after.
	before := []corpus.Category{{Top: 1, Sub: -1}, {Top: 4, Sub: -1}}
	after := []corpus.Category{{Top: 1, Sub: -1}, {Top: 8, Sub: -1}}
	reader := sim.NewUser(before...)

	learners := []filter.Learner{core.NewDefault(), rocchio.NewRI()}

	fmt.Printf("reader follows %v, switching to %v after article %d\n\n",
		before, after, shiftPoint)
	fmt.Printf("%10s  %12s  %12s   (niap on held-out articles)\n", "articles", "MM", "RI")

	for i, doc := range stream {
		if i == shiftPoint {
			reader.SetInterests(after...)
			fmt.Printf("%s interests shift %s\n", strings.Repeat("-", 14), strings.Repeat("-", 14))
		}
		fd := reader.Feedback(doc)
		for _, l := range learners {
			l.Observe(doc.Vec, fd)
		}
		if (i+1)%window == 0 {
			row := fmt.Sprintf("%10d", i+1)
			for _, l := range learners {
				res := eval.Evaluate(l, reader, test)
				row += fmt.Sprintf("  %12.4f", res.NIAP)
			}
			fmt.Println(row)
		}
	}

	mm := learners[0].(*core.Profile)
	c := mm.Counts()
	fmt.Printf("\nMM profile ended with %d vectors; %d created, %d merged, %d deleted along the way.\n",
		mm.ProfileSize(), c.Created, c.Merged, c.Deleted+c.Annihilated)
	fmt.Println("The deletions after the shift are the decay mechanism forgetting the dropped topic.")
}
