// Tuning: the paper's quality/efficiency trade-off (Section 5.4) as a
// hands-on sweep. One workload, one knob — MM's similarity threshold θ —
// and a table of what it buys: from a single Rocchio-like vector (θ = 0)
// through the paper's sweet spot (θ ≈ 0.15) to a vector-per-document
// NRN-like profile (θ = 1).
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"math/rand"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/eval"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
)

func main() {
	ds := corpus.Generate(corpus.DefaultConfig()).Vectorize(text.NewPipeline())
	rng := rand.New(rand.NewSource(11))
	train, test := ds.Split(rng.Int63(), 500)

	// A user with three top-level interests — the workload where profile
	// structure matters most.
	user := sim.NewUser(sim.RandomTopInterests(rng, ds, 3)...)
	stream := sim.Stream(rng, train, len(train))

	fmt.Printf("workload: interests %v, %d training docs, %d test docs\n\n",
		user.Interests(), len(stream), len(test))
	fmt.Printf("%8s %10s %14s %12s   %s\n", "theta", "niap", "profile-size", "p@10", "character")

	for _, theta := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 1.0} {
		opts := core.DefaultOptions()
		opts.Theta = theta
		mm := core.New(opts)
		res := eval.Run(mm, user, stream, test)
		fmt.Printf("%8.2f %10.4f %14d %12.4f   %s\n",
			theta, res.NIAP, res.ProfileSize, res.PrecisionAt10, character(theta))
	}

	fmt.Println("\nLow θ is cheap to store and match but blurs disparate interests;")
	fmt.Println("high θ models every nuance but the profile grows with every document.")
	fmt.Println("The paper (and this sweep) put the knee around θ = 0.10–0.15.")
}

func character(theta float64) string {
	switch {
	case theta == 0:
		return "single vector (Rocchio-like)"
	case theta <= 0.2:
		return "paper's operating range"
	case theta < 1:
		return "fine-grained"
	default:
		return "vector per document (NRN-like)"
	}
}
