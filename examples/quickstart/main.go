// Quickstart: build a self-adaptive user profile from relevance feedback on
// a handful of web pages, then rank unseen pages by predicted relevance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

// page builds a tiny web page around the given body text.
func page(title, body string) string {
	return "<html><head><title>" + title + "</title></head><body><h1>" +
		title + "</h1><p>" + body + "</p></body></html>"
}

func main() {
	// The pages our user has already judged. She likes astronomy and
	// baking; she is not interested in celebrity gossip.
	judged := []struct {
		title, body string
		relevant    bool
	}{
		{"Galaxies", "telescope observations of spiral galaxies and distant nebulae in deep space", true},
		{"Planets", "planets orbiting distant stars, telescope surveys of the night sky", true},
		{"Sourdough", "baking sourdough bread with a rye starter, kneading dough and oven temperatures", true},
		{"Croissants", "laminated dough, butter folding and baking flaky croissants in a hot oven", true},
		{"Gossip Tonight", "celebrity gossip red carpet scandal awards show fashion", false},
		{"More Gossip", "celebrity scandal breakup rumors award show gossip", false},
	}

	// Unseen pages to be filtered.
	incoming := []struct{ title, body string }{
		{"Comet Watch", "a bright comet visible by telescope near the nebula this month in the night sky"},
		{"Bagel Recipe", "boiling and baking bagels, proofing the dough overnight"},
		{"Red Carpet", "celebrity fashion gossip from last night's award show"},
		{"Stock Markets", "bond yields and stock market indexes moved sideways today"},
	}

	// 1. The processing pipeline of the paper's Figure 3 turns raw pages
	//    into term lists; collection statistics accumulate incrementally.
	pipe := text.NewPipeline()
	stats := vsm.NewStats()
	var judgedTerms [][]string
	for _, p := range judged {
		terms := pipe.Terms(page(p.title, p.body))
		judgedTerms = append(judgedTerms, terms)
		stats.Add(terms)
	}
	for _, p := range incoming {
		stats.Add(pipe.Terms(page(p.title, p.body)))
	}
	weighting := vsm.Bel{Stats: stats}

	// 2. Feed the judgments to an MM profile, one at a time.
	profile := core.NewDefault()
	for i, p := range judged {
		fd := filter.NotRelevant
		if p.relevant {
			fd = filter.Relevant
		}
		profile.Observe(vsm.DocumentVector(judgedTerms[i], weighting), fd)
	}

	// 3. The profile discovered the user's interests as separate clusters.
	fmt.Printf("profile has %d vectors (one per discovered interest):\n", profile.ProfileSize())
	for i, pv := range profile.Vectors() {
		fmt.Printf("  cluster %d: %v\n", i+1, pv.Vec.TopTerms(4))
	}

	// 4. Rank the unseen pages.
	type scored struct {
		title string
		score float64
	}
	var ranked []scored
	for _, p := range incoming {
		v := vsm.DocumentVector(pipe.Terms(page(p.title, p.body)), weighting)
		ranked = append(ranked, scored{p.title, profile.Score(v)})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })

	fmt.Println("\nincoming pages ranked by predicted relevance:")
	for _, r := range ranked {
		fmt.Printf("  %-14s %.4f\n", r.title, r.score)
	}
}
