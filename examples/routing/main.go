// Routing: profiles driving routing decisions — the last of the three
// uses the paper's opening sentence gives user profiles.
//
// A dissemination tree (root → 4 regional brokers → 4 leaf brokers each)
// serves 64 subscribers with MM profiles learned from feedback. Every
// edge carries an aggregate built by threshold-clustering all downstream
// profile vectors — the paper's own compression idea applied one level
// up. Pages are then routed: forwarded down an edge only when they match
// its aggregate. The example measures delivery recall and link traffic
// against flooding.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"math/rand"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/eval"
	"mmprofile/internal/route"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
)

const (
	regions      = 4
	leavesPerReg = 4
	usersPerLeaf = 4
	threshold    = 0.2 // both forwarding and delivery
)

func main() {
	ds := corpus.Generate(corpus.DefaultConfig()).Vectorize(text.NewPipeline())
	rng := rand.New(rand.NewSource(5))
	train, test := ds.Split(rng.Int63(), 500)

	root := route.NewNode("root")
	users := 0
	for r := 0; r < regions; r++ {
		region := route.NewNode(fmt.Sprintf("region%d", r))
		root.AddChild(region)
		for l := 0; l < leavesPerReg; l++ {
			leaf := route.NewNode(fmt.Sprintf("leaf%d%d", r, l))
			region.AddChild(leaf)
			for u := 0; u < usersPerLeaf; u++ {
				user := sim.NewUser(sim.RandomTopInterests(rng, ds, 1+rng.Intn(2))...)
				mm := core.NewDefault()
				eval.Train(mm, user, sim.Stream(rng, train, 400))
				leaf.Subscribe(fmt.Sprintf("u%d", users), mm.ProfileVectors())
				users++
			}
		}
	}
	rootAgg := root.Rebuild(0.3, 100)
	fmt.Printf("%d subscribers across %d brokers, %d links\n",
		users, 1+regions+regions*leavesPerReg, root.CountLinks())
	fmt.Printf("root aggregate compresses everything into %d vectors\n\n", rootAgg.Size())

	var routedDel, floodDel, routedLinks, floodLinks, pruned int
	for _, d := range test {
		rDel, rs := root.Route(d.Vec, threshold, threshold)
		fDel, fs := root.Flood(d.Vec, threshold)
		routedDel += len(rDel)
		floodDel += len(fDel)
		routedLinks += rs.LinksTraversed
		floodLinks += fs.LinksTraversed
		pruned += rs.LinksPruned
	}
	fmt.Printf("pushed %d pages through the tree\n", len(test))
	fmt.Printf("%-28s %12s %14s\n", "strategy", "deliveries", "links used")
	fmt.Printf("%-28s %12d %14d\n", "flooding", floodDel, floodLinks)
	fmt.Printf("%-28s %12d %14d\n", "profile-driven routing", routedDel, routedLinks)
	fmt.Printf("\nrecall %.1f%% of flooding's deliveries using %.1f%% of its traffic\n",
		100*float64(routedDel)/float64(floodDel),
		100*float64(routedLinks)/float64(floodLinks))
}
