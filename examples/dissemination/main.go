// Dissemination: the full push-based delivery loop at (small) scale.
//
// Fifty subscribers with random category interests join an in-process
// broker, each backed by a self-adaptive MM profile bootstrapped from
// nothing. Pages from the synthetic collection are published one at a
// time; each subscriber judges whatever is delivered to it (simulated
// feedback), and the profiles — and the shared inverted index — adapt
// online. The example prints delivery precision improving as profiles
// learn.
//
//	go run ./examples/dissemination
package main

import (
	"fmt"
	"math/rand"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
)

const (
	numSubscribers = 50
	numPublished   = 3000
	reportEvery    = 500
	// exploreRate is the chance a reader browses a page that was NOT
	// pushed to it and judges it anyway — the "monitoring" side of the
	// paper's feedback model. Without exploration the loop is closed:
	// profiles only ever see pages they already match and can never
	// discover uncovered interests.
	exploreRate = 0.08
)

func main() {
	ds := corpus.Generate(corpus.DefaultConfig()).Vectorize(text.NewPipeline())
	rng := rand.New(rand.NewSource(7))

	broker := pubsub.New(pubsub.Options{Threshold: 0.18, QueueSize: 4096})

	// Register subscribers. Each gets one or two random top-level
	// interests and an empty MM profile; a few seed judgments bootstrap it
	// (a cold profile matches nothing).
	type reader struct {
		sub  *pubsub.Subscription
		user *sim.User
	}
	readers := make([]reader, numSubscribers)
	for i := range readers {
		interests := sim.RandomTopInterests(rng, ds, 1+rng.Intn(2))
		u := sim.NewUser(interests...)
		l := core.NewDefault()
		subscription, err := broker.Subscribe(fmt.Sprintf("reader%02d", i), l)
		if err != nil {
			panic(err)
		}
		readers[i] = reader{sub: subscription, user: u}
	}
	// Bootstrap: publish a seed batch and let every reader judge every
	// seed document (as if browsing an initial digest).
	seed := sim.Stream(rng, ds.Docs, 40)
	for _, doc := range seed {
		id, _ := broker.PublishVector(doc.Vec)
		for _, r := range readers {
			if err := r.sub.Feedback(id, r.user.Feedback(doc)); err != nil {
				panic(err)
			}
		}
	}

	fmt.Printf("%d subscribers bootstrapped; streaming %d pages\n\n", numSubscribers, numPublished)
	fmt.Printf("%10s %12s %12s %14s %12s\n", "published", "deliveries", "precision", "index-vectors", "index-terms")

	var delivered, relevant int64
	stream := sim.Stream(rng, ds.Docs, numPublished)
	for i, doc := range stream {
		id, _ := broker.PublishVector(doc.Vec)
		// Every reader drains its queue and judges what it received; some
		// also browse the page on their own and judge it unprompted.
		for _, r := range readers {
			got := false
			for drained := false; !drained; {
				select {
				case d := <-r.sub.Deliveries():
					if d.Doc != id {
						continue // stale item from the bootstrap batch
					}
					got = true
					delivered++
					if r.user.Relevant(doc.Cat) {
						relevant++
					}
					if err := r.sub.Feedback(d.Doc, r.user.Feedback(doc)); err != nil {
						panic(err)
					}
					drained = true
				default:
					drained = true
				}
			}
			if !got && rng.Float64() < exploreRate {
				if err := r.sub.Feedback(id, r.user.Feedback(doc)); err != nil {
					panic(err)
				}
			}
		}
		if (i+1)%reportEvery == 0 {
			prec := 0.0
			if delivered > 0 {
				prec = float64(relevant) / float64(delivered)
			}
			ix := broker.IndexStats()
			fmt.Printf("%10d %12d %12.3f %14d %12d\n",
				i+1, delivered, prec, ix.Vectors, ix.Terms)
			delivered, relevant = 0, 0
		}
	}

	st := broker.Stats()
	fmt.Printf("\nbroker totals: %d published, %d delivered, %d feedbacks\n",
		st.Published, st.Deliveries, st.Feedbacks)
}
