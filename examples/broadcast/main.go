// Broadcast: profiles driving bandwidth allocation — the use the paper's
// opening sentence promises ("scheduling, bandwidth allocation, and
// routing decisions").
//
// Fifty users train MM profiles by relevance feedback. A broadcast server
// must then push 300 pages over a single channel: it estimates each page's
// demand by scoring it against every learned profile and builds a
// broadcast-disk schedule (hot pages repeat more often, square-root rule).
// The example compares user-perceived expected wait under that schedule
// against a profile-blind round-robin, and checks the learned demand
// against the ground truth the server never saw.
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/eval"
	"mmprofile/internal/filter"
	"mmprofile/internal/sched"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

const (
	numUsers    = 50
	numPages    = 300
	matchCutoff = 0.10
	judgments   = 500
)

func main() {
	ds := corpus.Generate(corpus.DefaultConfig()).Vectorize(text.NewPipeline())
	rng := rand.New(rand.NewSource(21))
	train, rest := ds.Split(rng.Int63(), 500)
	pages := rest[:numPages]

	// 1. Train one MM profile per user from feedback on the training
	//    stream. Interests are drawn Zipf-skewed across the top-level
	//    categories — real audiences cluster on popular topics, and that
	//    skew is exactly what demand-driven scheduling exploits.
	users := make([]*sim.User, numUsers)
	profiles := make([]*core.Profile, numUsers)
	for i := range users {
		users[i] = sim.NewUser(zipfInterests(rng, ds, 1+rng.Intn(2))...)
		profiles[i] = core.NewDefault()
		eval.Train(profiles[i], users[i], sim.Stream(rng, train, judgments))
	}
	fmt.Printf("trained %d MM profiles (%d judgments each)\n\n", numUsers, judgments)

	// 2. Estimate each page's demand from the learned profiles, and record
	//    the ground truth (how many users are actually interested) for
	//    validation.
	items := make([]sched.Item, len(pages))
	truth := make([]float64, len(pages))
	estimate := make([]float64, len(pages))
	// The estimator is rank-based: each user votes for the pages in the
	// top fifth of HER OWN score distribution (subject to an absolute
	// floor). Absolute cosines are not comparable across profiles — a
	// user with broad interests scores everything lower than a specialist
	// does — but each user's ranking of the pages is reliable.
	scores := make([][]float64, numUsers)
	for i, p := range profiles {
		scores[i] = make([]float64, len(pages))
		for j, page := range pages {
			scores[i][j] = p.Score(page.Vec)
		}
	}
	for j, page := range pages {
		var demand float64
		for i := range profiles {
			cut := percentile(scores[i], 80)
			if cut < matchCutoff {
				cut = matchCutoff
			}
			if scores[i][j] >= cut {
				demand++
			}
			if users[i].Feedback(page) == filter.Relevant {
				truth[j]++
			}
		}
		estimate[j] = demand
		items[j] = sched.Item{ID: int64(page.ID), Demand: demand}
	}
	// Content-based smoothing: a page's demand estimate is pooled with its
	// most similar pages (pages about the same thing attract the same
	// audience), which cuts the per-page estimation noise without using
	// any ground truth.
	smoothed := smoothByContent(pages, estimate, 8)
	for j := range items {
		items[j].Demand = smoothed[j]
	}
	fmt.Printf("demand correlation with truth: raw %.3f, content-smoothed %.3f\n",
		correlation(estimate, truth), correlation(smoothed, truth))
	fmt.Printf("estimated demand: mean %.1f, p10 %.0f, p90 %.0f; true: mean %.1f, p10 %.0f, p90 %.0f\n\n",
		eval.Mean(estimate), percentile(estimate, 10), percentile(estimate, 90),
		eval.Mean(truth), percentile(truth, 10), percentile(truth, 90))

	// 3. Build the schedules and compare user-perceived latency, weighting
	//    by the TRUE demand (what users actually want, not what the server
	//    believes).
	trueItems := make([]sched.Item, len(pages))
	for j, page := range pages {
		trueItems[j] = sched.Item{ID: int64(page.ID), Demand: truth[j]}
	}
	flat := sched.FlatSchedule(items)
	disk, err := sched.Build(items, sched.Config{Disks: 3, MaxFrequency: 6})
	if err != nil {
		panic(err)
	}
	oracle, err := sched.Build(trueItems, sched.DefaultConfig())
	if err != nil {
		panic(err)
	}

	flatLat := flat.ExpectedLatency(trueItems)
	diskLat := disk.ExpectedLatency(trueItems)
	oracleLat := oracle.ExpectedLatency(trueItems)
	fmt.Printf("%-34s %10s %10s\n", "schedule", "period", "E[wait]")
	fmt.Printf("%-34s %10d %10.1f\n", "round-robin (profile-blind)", flat.Period(), flatLat)
	fmt.Printf("%-34s %10d %10.1f\n", "broadcast-disk (learned demand)", disk.Period(), diskLat)
	fmt.Printf("%-34s %10d %10.1f\n", "broadcast-disk (oracle demand)", oracle.Period(), oracleLat)
	fmt.Printf("\nlearned profiles cut expected wait by %.0f%%; the oracle bound is %.0f%%.\n",
		100*(1-diskLat/flatLat), 100*(1-oracleLat/flatLat))
}

// zipfInterests draws n distinct top-level categories with probability
// ∝ 1/(rank+1)^1.3, modelling a skewed audience.
func zipfInterests(rng *rand.Rand, ds *corpus.Dataset, n int) []corpus.Category {
	tops := ds.TopCategories()
	weights := make([]float64, len(tops))
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 2.0)
	}
	var out []corpus.Category
	taken := make([]bool, len(tops))
	for len(out) < n {
		var total float64
		for i, w := range weights {
			if !taken[i] {
				total += w
			}
		}
		u := rng.Float64() * total
		for i, w := range weights {
			if taken[i] {
				continue
			}
			u -= w
			if u <= 0 {
				taken[i] = true
				out = append(out, tops[i])
				break
			}
		}
	}
	return out
}

// smoothByContent replaces each page's demand estimate with the mean over
// itself and its k most-similar pages (cosine on the page vectors).
func smoothByContent(pages []corpus.Document, raw []float64, k int) []float64 {
	type nb struct {
		sim float64
		idx int
	}
	out := make([]float64, len(raw))
	for i := range pages {
		nbs := make([]nb, 0, len(pages)-1)
		for j := range pages {
			if i == j {
				continue
			}
			nbs = append(nbs, nb{sim: vsmCosine(pages[i], pages[j]), idx: j})
		}
		sort.Slice(nbs, func(a, b int) bool { return nbs[a].sim > nbs[b].sim })
		if len(nbs) > k {
			nbs = nbs[:k]
		}
		sum := raw[i]
		for _, n := range nbs {
			sum += raw[n.idx]
		}
		out[i] = sum / float64(len(nbs)+1)
	}
	return out
}

func vsmCosine(a, b corpus.Document) float64 {
	return vsm.Cosine(a.Vec, b.Vec)
}

// percentile returns the p-th percentile (nearest-rank) of the sample.
func percentile(xs []float64, p int) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := p * len(sorted) / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// correlation returns the Pearson correlation of two equal-length samples.
func correlation(a, b []float64) float64 {
	ma, mb := eval.Mean(a), eval.Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
