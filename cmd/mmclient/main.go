// Command mmclient talks to an mmserver: subscribe with an adaptive
// profile, publish pages, poll deliveries, send relevance feedback, and
// inspect profiles.
//
// Usage:
//
//	mmclient [-addr host:7070] subscribe -user alice [-learner MM] [-keywords "cats,jazz"]
//	mmclient publish -file page.html        (or -text "...")
//	mmclient poll -user alice [-max 10]     (or: watch [-timeout 30s] to long-poll)
//	mmclient feedback -user alice -doc 12 -relevant=true
//	mmclient profile -user alice
//	mmclient fetch -doc 12                  (server must run -retain-content)
//	mmclient export -user alice -out alice.profile
//	mmclient import -user alice -in alice.profile
//	mmclient stats                          (wire-protocol counters)
//	mmclient stats -http localhost:8080     (full /statsz + /metrics dump)
//	mmclient unsubscribe -user alice
package main

import (
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mmprofile/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "mmserver address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cmd, rest := args[0], args[1:]

	if cmd == "stats" {
		// stats has an HTTP mode that reads the status listener rather
		// than the wire protocol, so handle it before dialing.
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		httpAddr := fs.String("http", "", "status-listener address (uses /statsz + /metrics instead of the wire protocol)")
		prom := fs.Bool("prom", false, "with -http: also dump the raw Prometheus exposition")
		parse(fs, rest)
		if *httpAddr != "" {
			check(httpStats(*httpAddr, *prom))
			return
		}
	}

	c, err := wire.Dial(*addr)
	if err != nil {
		fail(err)
	}
	defer c.Close()

	switch cmd {
	case "subscribe":
		fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		learner := fs.String("learner", "", "algorithm (default MM)")
		keywords := fs.String("keywords", "", "comma-separated seed keywords")
		parse(fs, rest)
		var kw []string
		if *keywords != "" {
			for _, k := range strings.Split(*keywords, ",") {
				kw = append(kw, strings.TrimSpace(k))
			}
		}
		check(c.Subscribe(*user, *learner, kw))
		fmt.Printf("subscribed %s\n", *user)

	case "unsubscribe":
		fs := flag.NewFlagSet("unsubscribe", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		parse(fs, rest)
		check(c.Unsubscribe(*user))
		fmt.Printf("unsubscribed %s\n", *user)

	case "publish":
		fs := flag.NewFlagSet("publish", flag.ExitOnError)
		file := fs.String("file", "", "HTML/text file to publish")
		textArg := fs.String("text", "", "literal content to publish")
		parse(fs, rest)
		content := *textArg
		if *file != "" {
			raw, err := os.ReadFile(*file)
			if err != nil {
				fail(err)
			}
			content = string(raw)
		}
		if content == "" {
			fail(fmt.Errorf("publish needs -file or -text"))
		}
		doc, delivered, err := c.Publish(content)
		check(err)
		fmt.Printf("doc %d delivered to %d subscriber(s)\n", doc, delivered)

	case "poll":
		fs := flag.NewFlagSet("poll", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		max := fs.Int("max", 0, "max deliveries (0 = all)")
		parse(fs, rest)
		ds, err := c.Poll(*user, *max)
		check(err)
		if len(ds) == 0 {
			fmt.Println("no deliveries")
			return
		}
		for _, d := range ds {
			fmt.Printf("doc %d  score %.4f\n", d.Doc, d.Score)
		}

	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		max := fs.Int("max", 0, "max deliveries (0 = all)")
		timeout := fs.Duration("timeout", 30*time.Second, "how long to wait")
		parse(fs, rest)
		ds, err := c.Watch(*user, *max, *timeout)
		check(err)
		if len(ds) == 0 {
			fmt.Println("no deliveries (timed out)")
			return
		}
		for _, d := range ds {
			fmt.Printf("doc %d  score %.4f\n", d.Doc, d.Score)
		}

	case "feedback":
		fs := flag.NewFlagSet("feedback", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		doc := fs.Int64("doc", -1, "document id")
		relevant := fs.Bool("relevant", true, "judgment")
		parse(fs, rest)
		check(c.Feedback(*user, *doc, *relevant))
		fmt.Printf("feedback recorded for doc %d\n", *doc)

	case "profile":
		fs := flag.NewFlagSet("profile", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		parse(fs, rest)
		p, err := c.Profile(*user)
		check(err)
		fmt.Printf("learner %s, %d vector(s)\n", p.Learner, p.Size)
		for i, terms := range p.Vectors {
			fmt.Printf("  #%d: %s\n", i+1, strings.Join(terms, " "))
		}

	case "fetch":
		fs := flag.NewFlagSet("fetch", flag.ExitOnError)
		doc := fs.Int64("doc", -1, "document id")
		parse(fs, rest)
		content, err := c.Fetch(*doc)
		check(err)
		fmt.Println(content)

	case "export":
		fs := flag.NewFlagSet("export", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		out := fs.String("out", "", "file to write the profile to (default stdout as base64)")
		parse(fs, rest)
		learner, state, err := c.Export(*user)
		check(err)
		if *out == "" {
			fmt.Printf("%s %s\n", learner, base64.StdEncoding.EncodeToString(state))
			return
		}
		blob := append([]byte(learner+"\n"), state...)
		check(os.WriteFile(*out, blob, 0o644))
		fmt.Printf("exported %s profile of %s (%d bytes) to %s\n", learner, *user, len(state), *out)

	case "import":
		fs := flag.NewFlagSet("import", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		in := fs.String("in", "", "file written by export")
		parse(fs, rest)
		raw, err := os.ReadFile(*in)
		check(err)
		nl := strings.IndexByte(string(raw), '\n')
		if nl < 0 {
			fail(fmt.Errorf("malformed profile file %s", *in))
		}
		check(c.Import(*user, string(raw[:nl]), raw[nl+1:]))
		fmt.Printf("imported %s as %s\n", *in, *user)

	case "stats":
		st, err := c.Stats()
		check(err)
		fmt.Printf("published   %d\n", st.Published)
		fmt.Printf("deliveries  %d (dropped %d)\n", st.Deliveries, st.Dropped)
		fmt.Printf("feedbacks   %d\n", st.Feedbacks)
		fmt.Printf("subscribers %d\n", st.Subscribers)
		fmt.Printf("index       %d vectors over %d terms\n", st.IndexVectors, st.IndexTerms)

	default:
		usage()
	}
}

// httpStats fetches /statsz from a status listener and pretty-prints it:
// scalars as aligned sorted key/value lines, histogram snapshots as
// count/p50/p95/p99. With prom, the raw /metrics exposition follows.
func httpStats(addr string, prom bool) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	body, err := httpGet(addr + "/statsz")
	if err != nil {
		return err
	}
	var stats map[string]any
	if err := json.Unmarshal(body, &stats); err != nil {
		return fmt.Errorf("statsz: %w", err)
	}
	metricsObj, _ := stats["metrics"].(map[string]any)
	delete(stats, "metrics")
	printKV(stats, "")
	if len(metricsObj) > 0 {
		fmt.Println("\nmetrics:")
		printKV(metricsObj, "  ")
	}
	if prom {
		raw, err := httpGet(addr + "/metrics")
		if err != nil {
			return err
		}
		fmt.Println()
		os.Stdout.Write(raw)
	}
	return nil
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// printKV writes one aligned "key  value" line per entry, sorted by key.
// Histogram snapshots (maps) render as count/p50/p95/p99.
func printKV(m map[string]any, indent string) {
	keys := make([]string, 0, len(m))
	width := 0
	for k := range m {
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch v := m[k].(type) {
		case map[string]any:
			fmt.Printf("%s%-*s  count=%s p50=%s p95=%s p99=%s\n", indent, width, k,
				num(v["count"]), num(v["p50"]), num(v["p95"]), num(v["p99"]))
		default:
			fmt.Printf("%s%-*s  %s\n", indent, width, k, num(v))
		}
	}
}

// num formats a JSON-decoded number compactly (integers without a
// trailing .0, latencies with enough precision to be useful).
func num(v any) string {
	f, ok := v.(float64)
	if !ok {
		return fmt.Sprint(v)
	}
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.6g", f)
}

func parse(fs *flag.FlagSet, args []string) {
	_ = fs.Parse(args) // ExitOnError
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmclient:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmclient [-addr host:port] subscribe|unsubscribe|publish|poll|watch|feedback|profile|fetch|export|import|stats [flags]")
	os.Exit(2)
}
