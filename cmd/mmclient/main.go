// Command mmclient talks to an mmserver: subscribe with an adaptive
// profile, publish pages, poll deliveries, send relevance feedback, and
// inspect profiles.
//
// Usage:
//
//	mmclient [-addr host:7070] subscribe -user alice [-learner MM] [-keywords "cats,jazz"]
//	mmclient publish -file page.html        (or -text "...")
//	mmclient poll -user alice [-max 10]     (or: watch [-timeout 30s] to long-poll)
//	mmclient listen -user alice [-batch 64] (server-push session; streams until closed)
//	mmclient feedback -user alice -doc 12 -relevant=true
//	mmclient profile -user alice
//	mmclient fetch -doc 12                  (server must run -retain-content)
//	mmclient export -user alice -out alice.profile
//	mmclient import -user alice -in alice.profile
//	mmclient stats                          (wire-protocol counters)
//	mmclient stats -http localhost:8080     (full /statsz + /metrics dump)
//	mmclient trace -http localhost:8080 [-slow] [-n 10] [-id TRACE]
//	mmclient explain -http localhost:8080 -user alice [-doc 12]
//	mmclient top -http localhost:8080 [-k 10] [-dim subscriber_drops] [-watch 2s]
//	mmclient health -http localhost:8080    (liveness + per-component readiness)
//	mmclient unsubscribe -user alice
package main

import (
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mmprofile/internal/core"
	"mmprofile/internal/obs"
	"mmprofile/internal/trace"
	"mmprofile/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "mmserver address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cmd, rest := args[0], args[1:]

	if cmd == "stats" {
		// stats has an HTTP mode that reads the status listener rather
		// than the wire protocol, so handle it before dialing.
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		httpAddr := fs.String("http", "", "status-listener address (uses /statsz + /metrics instead of the wire protocol)")
		prom := fs.Bool("prom", false, "with -http: also dump the raw Prometheus exposition")
		parse(fs, rest)
		if *httpAddr != "" {
			check(httpStats(*httpAddr, *prom))
			return
		}
	}

	if cmd == "trace" {
		// trace is HTTP-only: it reads the server's /tracez rings.
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		httpAddr := fs.String("http", "", "status-listener address (required)")
		slow := fs.Bool("slow", false, "show the slow-trace ring instead of the recent ring")
		n := fs.Int("n", 10, "traces to list (0 = all)")
		id := fs.String("id", "", "print one trace's span tree by id")
		parse(fs, rest)
		if *httpAddr == "" {
			fail(fmt.Errorf("trace needs -http (the mmserver -http address)"))
		}
		check(httpTrace(*httpAddr, *slow, *n, *id))
		return
	}

	if cmd == "top" {
		// top is HTTP-only: it reads the server's /topz hot-key sketches.
		fs := flag.NewFlagSet("top", flag.ExitOnError)
		httpAddr := fs.String("http", "", "status-listener address (required)")
		k := fs.Int("k", 10, "entries per dimension")
		dim := fs.String("dim", "", "show only this dimension (e.g. subscriber_drops)")
		watch := fs.Duration("watch", 0, "refresh every interval until interrupted (0 = one shot)")
		parse(fs, rest)
		if *httpAddr == "" {
			fail(fmt.Errorf("top needs -http (the mmserver -http address)"))
		}
		for {
			if *watch > 0 {
				fmt.Print("\033[H\033[2J") // clear and home, like top(1)
			}
			check(httpTop(*httpAddr, *k, *dim))
			if *watch <= 0 {
				return
			}
			time.Sleep(*watch)
		}
	}

	if cmd == "health" {
		// health is HTTP-only: it reads /healthz and /readyz.
		fs := flag.NewFlagSet("health", flag.ExitOnError)
		httpAddr := fs.String("http", "", "status-listener address (required)")
		parse(fs, rest)
		if *httpAddr == "" {
			fail(fmt.Errorf("health needs -http (the mmserver -http address)"))
		}
		check(httpHealth(*httpAddr))
		return
	}

	if cmd == "explain" {
		// explain is HTTP-only: it reads the server's /explainz endpoint.
		fs := flag.NewFlagSet("explain", flag.ExitOnError)
		httpAddr := fs.String("http", "", "status-listener address (required)")
		user := fs.String("user", "", "subscriber id")
		doc := fs.Int64("doc", -1, "also explain this retained document's score")
		parse(fs, rest)
		if *httpAddr == "" || *user == "" {
			fail(fmt.Errorf("explain needs -http and -user"))
		}
		check(httpExplain(*httpAddr, *user, *doc))
		return
	}

	c, err := wire.Dial(*addr)
	if err != nil {
		fail(err)
	}
	defer c.Close()

	switch cmd {
	case "subscribe":
		fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		learner := fs.String("learner", "", "algorithm (default MM)")
		keywords := fs.String("keywords", "", "comma-separated seed keywords")
		parse(fs, rest)
		var kw []string
		if *keywords != "" {
			for _, k := range strings.Split(*keywords, ",") {
				kw = append(kw, strings.TrimSpace(k))
			}
		}
		check(c.Subscribe(*user, *learner, kw))
		fmt.Printf("subscribed %s\n", *user)

	case "unsubscribe":
		fs := flag.NewFlagSet("unsubscribe", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		parse(fs, rest)
		check(c.Unsubscribe(*user))
		fmt.Printf("unsubscribed %s\n", *user)

	case "publish":
		fs := flag.NewFlagSet("publish", flag.ExitOnError)
		file := fs.String("file", "", "HTML/text file to publish")
		textArg := fs.String("text", "", "literal content to publish")
		parse(fs, rest)
		content := *textArg
		if *file != "" {
			raw, err := os.ReadFile(*file)
			if err != nil {
				fail(err)
			}
			content = string(raw)
		}
		if content == "" {
			fail(fmt.Errorf("publish needs -file or -text"))
		}
		doc, delivered, traceID, err := c.PublishTrace(content, "")
		check(err)
		fmt.Printf("doc %d delivered to %d subscriber(s)\n", doc, delivered)
		if traceID != "" {
			fmt.Printf("trace %s (mmclient trace -http ... -id %s)\n", traceID, traceID)
		}

	case "poll":
		fs := flag.NewFlagSet("poll", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		max := fs.Int("max", 0, "max deliveries (0 = all)")
		parse(fs, rest)
		ds, err := c.Poll(*user, *max)
		check(err)
		if len(ds) == 0 {
			fmt.Println("no deliveries")
			return
		}
		for _, d := range ds {
			fmt.Printf("doc %d  score %.4f\n", d.Doc, d.Score)
		}

	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		max := fs.Int("max", 0, "max deliveries (0 = all)")
		timeout := fs.Duration("timeout", 30*time.Second, "how long to wait")
		parse(fs, rest)
		ds, err := c.Watch(*user, *max, *timeout)
		check(err)
		if len(ds) == 0 {
			fmt.Println("no deliveries (timed out)")
			return
		}
		for _, d := range ds {
			fmt.Printf("doc %d  score %.4f\n", d.Doc, d.Score)
		}

	case "listen":
		// listen holds the connection open in server-push session mode and
		// prints deliveries as the server pushes them — unlike watch, the
		// connection is never blocked on a serial request/response cycle, and
		// sequence gaps (deliveries lost to queue overflow) are reported as
		// they are observed.
		fs := flag.NewFlagSet("listen", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		batch := fs.Int("batch", 0, "max deliveries coalesced per pushed frame (0 = server default)")
		parse(fs, rest)
		sess, err := c.Session(*user, *batch)
		check(err)
		fmt.Printf("listening as %s (next seq %d, %d dropped so far; ctrl-c to stop)\n",
			*user, sess.NextSeq(), sess.Dropped())
		for {
			frame, err := sess.Recv()
			if err != nil {
				fail(err)
			}
			for _, d := range frame.Deliveries {
				fmt.Printf("doc %d  score %.4f  seq %d\n", d.Doc, d.Score, d.Seq)
			}
			if gaps := sess.Gaps(); gaps > 0 {
				fmt.Printf("  (%d delivery(ies) lost to queue overflow so far; server reports %d dropped)\n",
					gaps, frame.Dropped)
			}
			if frame.Closed {
				fmt.Println("subscriber closed")
				return
			}
		}

	case "feedback":
		fs := flag.NewFlagSet("feedback", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		doc := fs.Int64("doc", -1, "document id")
		relevant := fs.Bool("relevant", true, "judgment")
		parse(fs, rest)
		traceID, err := c.FeedbackTrace(*user, *doc, *relevant, "")
		check(err)
		fmt.Printf("feedback recorded for doc %d\n", *doc)
		if traceID != "" {
			fmt.Printf("trace %s\n", traceID)
		}

	case "profile":
		fs := flag.NewFlagSet("profile", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		parse(fs, rest)
		p, err := c.Profile(*user)
		check(err)
		fmt.Printf("learner %s, %d vector(s)\n", p.Learner, p.Size)
		for i, terms := range p.Vectors {
			fmt.Printf("  #%d: %s\n", i+1, strings.Join(terms, " "))
		}

	case "fetch":
		fs := flag.NewFlagSet("fetch", flag.ExitOnError)
		doc := fs.Int64("doc", -1, "document id")
		parse(fs, rest)
		content, err := c.Fetch(*doc)
		check(err)
		fmt.Println(content)

	case "export":
		fs := flag.NewFlagSet("export", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		out := fs.String("out", "", "file to write the profile to (default stdout as base64)")
		parse(fs, rest)
		learner, state, err := c.Export(*user)
		check(err)
		if *out == "" {
			fmt.Printf("%s %s\n", learner, base64.StdEncoding.EncodeToString(state))
			return
		}
		blob := append([]byte(learner+"\n"), state...)
		check(os.WriteFile(*out, blob, 0o644))
		fmt.Printf("exported %s profile of %s (%d bytes) to %s\n", learner, *user, len(state), *out)

	case "import":
		fs := flag.NewFlagSet("import", flag.ExitOnError)
		user := fs.String("user", "", "subscriber id")
		in := fs.String("in", "", "file written by export")
		parse(fs, rest)
		raw, err := os.ReadFile(*in)
		check(err)
		nl := strings.IndexByte(string(raw), '\n')
		if nl < 0 {
			fail(fmt.Errorf("malformed profile file %s", *in))
		}
		check(c.Import(*user, string(raw[:nl]), raw[nl+1:]))
		fmt.Printf("imported %s as %s\n", *in, *user)

	case "stats":
		st, err := c.Stats()
		check(err)
		fmt.Printf("published   %d\n", st.Published)
		fmt.Printf("deliveries  %d (dropped %d)\n", st.Deliveries, st.Dropped)
		fmt.Printf("feedbacks   %d\n", st.Feedbacks)
		fmt.Printf("subscribers %d\n", st.Subscribers)
		fmt.Printf("index       %d vectors over %d terms\n", st.IndexVectors, st.IndexTerms)

	default:
		usage()
	}
}

// httpStats fetches /statsz from a status listener and pretty-prints it:
// scalars as aligned sorted key/value lines, histogram snapshots as
// count/p50/p95/p99. With prom, the raw /metrics exposition follows.
func httpStats(addr string, prom bool) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	body, err := httpGet(addr + "/statsz")
	if err != nil {
		return err
	}
	var stats map[string]any
	if err := json.Unmarshal(body, &stats); err != nil {
		return fmt.Errorf("statsz: %w", err)
	}
	metricsObj, _ := stats["metrics"].(map[string]any)
	delete(stats, "metrics")
	printKV(stats, "")
	if len(metricsObj) > 0 {
		fmt.Println("\nmetrics:")
		printKV(metricsObj, "  ")
	}
	if prom {
		raw, err := httpGet(addr + "/metrics")
		if err != nil {
			return err
		}
		fmt.Println()
		os.Stdout.Write(raw)
	}
	return nil
}

// httpTrace reads /tracez and renders traces: one summary line each, or,
// with id, the full span tree (children indented under parents, attributes
// inline) — the drill-down for "why was this one request slow?".
func httpTrace(addr string, slow bool, n int, id string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if id != "" {
		body, err := httpGet(addr + "/tracez?trace=" + id)
		if err != nil {
			return err
		}
		var ts trace.TraceSnapshot
		if err := json.Unmarshal(body, &ts); err != nil {
			return fmt.Errorf("tracez: %w", err)
		}
		printTrace(ts)
		return nil
	}
	body, err := httpGet(addr + "/tracez")
	if err != nil {
		return err
	}
	var out struct {
		Enabled  bool           `json:"enabled"`
		Snapshot trace.Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("tracez: %w", err)
	}
	if !out.Enabled {
		fmt.Println("tracing disabled (start mmserver with -trace-sample or -trace-slow)")
		return nil
	}
	ring, label := out.Snapshot.Recent, "recent"
	if slow {
		ring, label = out.Snapshot.Slow, "slow"
	}
	fmt.Printf("%s traces: %d shown (sampled %d, slow-captured %d; sample 1-in-%d, slow threshold %.3gms)\n",
		label, len(ring), out.Snapshot.Sampled, out.Snapshot.SlowCaptured,
		out.Snapshot.SampleEvery, out.Snapshot.SlowThresholdMS)
	if n > 0 && len(ring) > n {
		ring = ring[:n]
	}
	for _, ts := range ring {
		marks := ""
		if ts.Slow {
			marks += " SLOW"
		}
		if ts.Synthetic {
			marks += " synthetic"
		}
		fmt.Printf("  %s  %-22s %9.3fms  %d span(s)%s\n",
			ts.Trace, ts.Root, ts.DurationMS, len(ts.Spans), marks)
	}
	return nil
}

// printTrace renders one trace's spans as a tree.
func printTrace(ts trace.TraceSnapshot) {
	fmt.Printf("trace %s  root %s  %.3fms", ts.Trace, ts.Root, ts.DurationMS)
	if ts.RemoteParent != "" {
		fmt.Printf("  (joined remote parent %s)", ts.RemoteParent)
	}
	fmt.Println()
	children := map[string][]trace.SpanSnapshot{}
	byID := map[string]bool{}
	for _, s := range ts.Spans {
		byID[s.ID] = true
	}
	var roots []trace.SpanSnapshot
	for _, s := range ts.Spans {
		// A span whose parent is outside the capture (remote, or the root
		// itself) prints at the top level.
		if s.Parent != "" && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var walk func(s trace.SpanSnapshot, depth int)
	walk = func(s trace.SpanSnapshot, depth int) {
		attrs := ""
		for _, a := range s.Attrs {
			attrs += fmt.Sprintf(" %s=%v", a.Key, a.Value())
		}
		fmt.Printf("  %*s%-*s %11.1fµs%s\n", 2*depth, "", 28-2*depth, s.Name, s.DurationUS, attrs)
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, s := range roots {
		walk(s, 0)
	}
}

// httpExplain reads /explainz and renders the adaptation story: current
// vectors with their stable ids, then the audit journal — one line per
// structural operation with the cosine-vs-θ rationale and the strength
// movement. With doc ≥ 0, the score-side explanation follows.
func httpExplain(addr, user string, doc int64) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := addr + "/explainz?user=" + user
	if doc >= 0 {
		url += fmt.Sprintf("&doc=%d", doc)
	}
	body, err := httpGet(url)
	if err != nil {
		return err
	}
	var out struct {
		Profile struct {
			User    string `json:"user"`
			Learner string `json:"learner"`
			Size    int    `json:"size"`
			Vectors []struct {
				ID             uint64   `json:"id"`
				Strength       float64  `json:"strength"`
				CreatedAt      int      `json:"created_at"`
				Incorporations int      `json:"incorporations"`
				TopTerms       []string `json:"top_terms"`
			} `json:"vectors"`
			Audit []core.AuditEvent `json:"audit"`
		} `json:"profile"`
		Explanation *core.Explanation `json:"explanation"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("explainz: %w", err)
	}
	p := out.Profile
	fmt.Printf("%s: learner %s, %d vector(s)\n", p.User, p.Learner, p.Size)
	for _, v := range p.Vectors {
		fmt.Printf("  vector %d  strength %.3f  incorporations %d  since step %d  [%s]\n",
			v.ID, v.Strength, v.Incorporations, v.CreatedAt, strings.Join(v.TopTerms, " "))
	}
	if len(p.Audit) > 0 {
		fmt.Printf("audit journal (%d event(s)):\n", len(p.Audit))
		for _, ev := range p.Audit {
			line := fmt.Sprintf("  step %-5d %-11s", ev.Step, ev.Op)
			if ev.Vector != 0 {
				line += fmt.Sprintf(" vector %d", ev.Vector)
			}
			if ev.Merged != 0 {
				line += fmt.Sprintf(" ⟵ vector %d", ev.Merged)
			}
			line += fmt.Sprintf("  cos %.3f vs θ %.3f  strength %.3f→%.3f",
				ev.Cosine, ev.Theta, ev.StrengthBefore, ev.StrengthAfter)
			if ev.Doc != 0 {
				line += fmt.Sprintf("  doc %d", ev.Doc)
			}
			if ev.Trace != "" {
				line += "  trace " + ev.Trace
			}
			fmt.Println(line)
		}
	}
	if out.Explanation != nil {
		ex := out.Explanation
		fmt.Printf("doc %d: score %.4f via vector %d (strength %.3f)\n",
			doc, ex.Score, ex.VectorID, ex.Strength)
		for _, c := range ex.Contributions {
			fmt.Printf("  %-20s %.4f\n", c.Term, c.Weight)
		}
	}
	return nil
}

// httpTop fetches /topz in its table rendering and prints it verbatim:
// per dimension, the hottest k keys with their sketch counts and error
// bounds plus the 10s windowed rate.
func httpTop(addr string, k int, dim string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := fmt.Sprintf("%s/topz?format=table&k=%d", addr, k)
	if dim != "" {
		url += "&dim=" + dim
	}
	body, err := httpGet(url)
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	return nil
}

// httpHealth reads /healthz (liveness) and /readyz (readiness) and renders
// both: the liveness line, the readiness rollup, and one line per component
// with its status, reason, and heartbeat age. Exits 1 when the server is
// not ready, so scripts can gate on `mmclient health`.
func httpHealth(addr string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	body, err := httpGet(addr + "/healthz")
	if err != nil {
		return err
	}
	fmt.Printf("liveness   %s\n", strings.TrimSpace(string(body)))

	// /readyz answers 503 while not ready — with the same JSON body — so
	// it needs a fetch path that keeps the body on non-200.
	resp, err := http.Get(addr + "/readyz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var snap obs.HealthSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("readyz: %w", err)
	}
	fmt.Printf("readiness  %s (HTTP %d)\n", snap.Status, resp.StatusCode)
	if len(snap.Components) > 0 {
		width := 0
		names := make([]string, 0, len(snap.Components))
		for name := range snap.Components {
			names = append(names, name)
			if len(name) > width {
				width = len(name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			c := snap.Components[name]
			line := fmt.Sprintf("  %-*s  %s", width, name, c.Status)
			if c.Reason != "" {
				line += "  (" + c.Reason + ")"
			}
			if c.LastBeatAgoMS > 0 {
				line += fmt.Sprintf("  beat %dms ago", c.LastBeatAgoMS)
			}
			fmt.Println(line)
		}
	}
	if !snap.Ready() {
		os.Exit(1)
	}
	return nil
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// printKV writes one aligned "key  value" line per entry, sorted by key.
// Histogram snapshots (maps) render as count/p50/p95/p99.
func printKV(m map[string]any, indent string) {
	keys := make([]string, 0, len(m))
	width := 0
	for k := range m {
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch v := m[k].(type) {
		case map[string]any:
			fmt.Printf("%s%-*s  count=%s p50=%s p95=%s p99=%s\n", indent, width, k,
				num(v["count"]), num(v["p50"]), num(v["p95"]), num(v["p99"]))
		default:
			fmt.Printf("%s%-*s  %s\n", indent, width, k, num(v))
		}
	}
}

// num formats a JSON-decoded number compactly (integers without a
// trailing .0, latencies with enough precision to be useful).
func num(v any) string {
	f, ok := v.(float64)
	if !ok {
		return fmt.Sprint(v)
	}
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.6g", f)
}

func parse(fs *flag.FlagSet, args []string) {
	_ = fs.Parse(args) // ExitOnError
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmclient:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmclient [-addr host:port] subscribe|unsubscribe|publish|poll|watch|listen|feedback|profile|fetch|export|import|stats|trace|explain|top|health [flags]")
	os.Exit(2)
}
