// Command mmprofile trains a user profile on a document collection and
// reports its filtering effectiveness — the paper's protocol on a single
// profile, end to end.
//
// By default it uses the built-in synthetic Yahoo!-style collection; pass
// -data to use your own documents instead (one sub-directory per category,
// .html/.htm/.txt files inside).
//
// Usage:
//
//	mmprofile [-learner MM] [-interests C0,C3] [-theta 0.15] [-eta 0.2]
//	          [-train 500] [-seed 1] [-data DIR] [-show 5]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/eval"
	"mmprofile/internal/filter"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
	"mmprofile/internal/trec"

	_ "mmprofile/internal/rocchio" // register baseline learners
)

func main() {
	var (
		learner   = flag.String("learner", "MM", "profile algorithm: MM, MMND, RI, RG10, RG100, Batch, NRN")
		interests = flag.String("interests", "", "comma-separated categories, e.g. C0,C34 (empty = 2 random top-level)")
		theta     = flag.Float64("theta", 0.15, "MM similarity threshold θ")
		eta       = flag.Float64("eta", 0.2, "MM adaptability η")
		train     = flag.Int("train", 500, "training documents (rest of the collection is the test set)")
		seed      = flag.Int64("seed", 1, "random seed for split, stream order and random interests")
		data      = flag.String("data", "", "directory of real documents (default: synthetic collection)")
		show      = flag.Int("show", 5, "profile vectors to print")
		trecRun   = flag.String("trecrun", "", "write the test-set ranking as a TREC run file")
	)
	flag.Parse()

	ds, err := loadDataset(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmprofile:", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))
	cats, err := parseInterests(*interests, ds, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmprofile:", err)
		os.Exit(1)
	}

	l, err := makeLearner(*learner, *theta, *eta)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmprofile:", err)
		os.Exit(1)
	}

	u := sim.NewUser(cats...)
	trainDocs, testDocs := ds.Split(rng.Int63(), *train)
	stream := sim.Stream(rng, trainDocs, len(trainDocs))
	res := eval.Run(l, u, stream, testDocs)
	metrics := eval.Metrics(eval.Rank(l, u, testDocs))

	fmt.Printf("collection:    %d documents (%d train / %d test)\n",
		len(ds.Docs), len(stream), len(testDocs))
	fmt.Printf("interests:     %v\n", u.Interests())
	fmt.Printf("learner:       %s\n", l.Name())
	fmt.Printf("niap:          %.4f\n", res.NIAP)
	fmt.Printf("P@5/10/20/30:  %.4f / %.4f / %.4f / %.4f\n",
		metrics.PrecisionAt[5], metrics.PrecisionAt[10],
		metrics.PrecisionAt[20], metrics.PrecisionAt[30])
	fmt.Printf("R-precision:   %.4f  (%d relevant in test set)\n", metrics.RPrecision, metrics.Relevant)
	fmt.Printf("recall@10:     %.4f\n", res.RecallAt10)
	fmt.Printf("profile size:  %d vector(s)\n", res.ProfileSize)

	if *trecRun != "" {
		if err := writeTRECRun(*trecRun, l, testDocs); err != nil {
			fmt.Fprintln(os.Stderr, "mmprofile:", err)
			os.Exit(1)
		}
		fmt.Printf("trec run:      %s\n", *trecRun)
	}

	if mm, ok := l.(*core.Profile); ok && *show > 0 {
		fmt.Println("\nstrongest profile vectors:")
		for i, pv := range mm.Vectors() {
			if i >= *show {
				fmt.Printf("  … and %d more\n", len(mm.Vectors())-*show)
				break
			}
			fmt.Printf("  #%d strength %.2f, %d terms: %s\n",
				i+1, pv.Strength, pv.Vec.Len(), strings.Join(pv.Vec.TopTerms(6), " "))
		}
		c := mm.Counts()
		fmt.Printf("\noperations: %d created, %d incorporated, %d merged, %d deleted\n",
			c.Created, c.Incorporated, c.Merged, c.Deleted+c.Annihilated)

		// Explain the top-ranked test document.
		bestIdx, bestScore := -1, -1.0
		for i, d := range testDocs {
			if s := mm.Score(d.Vec); s > bestScore {
				bestIdx, bestScore = i, s
			}
		}
		if bestIdx >= 0 {
			d := testDocs[bestIdx]
			ex := mm.Explain(d.Vec, 5)
			fmt.Printf("\ntop-ranked test document: id %d, category %s, score %.4f\n",
				d.ID, d.Cat, ex.Score)
			fmt.Printf("  matched cluster #%d (strength %.2f); contributing terms:", ex.Cluster+1, ex.Strength)
			for _, tc := range ex.Contributions {
				fmt.Printf(" %s(%.3f)", tc.Term, tc.Weight)
			}
			fmt.Println()
		}
	}
}

func loadDataset(dir string) (*corpus.Dataset, error) {
	if dir == "" {
		return corpus.Generate(corpus.DefaultConfig()).Vectorize(text.NewPipeline()), nil
	}
	return corpus.LoadDirectory(dir, text.NewPipeline())
}

// parseInterests reads "C3,C27"-style category names; Cij means top-level
// category i, second-level j.
func parseInterests(s string, ds *corpus.Dataset, rng *rand.Rand) ([]corpus.Category, error) {
	if s == "" {
		return sim.RandomTopInterests(rng, ds, 2), nil
	}
	var out []corpus.Category
	for _, part := range strings.Split(s, ",") {
		cat, err := corpus.ParseCategory(part)
		if err != nil {
			return nil, err
		}
		out = append(out, cat)
	}
	return out, nil
}

// writeTRECRun emits the frozen profile's ranking of the test set in the
// standard run-file format (topic "T1"), consumable by cmd/mmeval or
// trec_eval.
func writeTRECRun(path string, l filter.Learner, test []corpus.Document) error {
	type scored struct {
		doc   corpus.Document
		score float64
	}
	rows := make([]scored, len(test))
	for i, d := range test {
		rows[i] = scored{doc: d, score: l.Score(d.Vec)}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].score != rows[j].score {
			return rows[i].score > rows[j].score
		}
		return rows[i].doc.ID < rows[j].doc.ID
	})
	run := trec.Run{}
	for rank, r := range rows {
		run["T1"] = append(run["T1"], trec.RunEntry{
			Topic: "T1",
			DocNo: fmt.Sprintf("D%04d", r.doc.ID),
			Rank:  rank + 1,
			Score: r.score,
			Tag:   l.Name(),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trec.WriteRun(f, run)
}

func makeLearner(name string, theta, eta float64) (filter.Learner, error) {
	switch name {
	case "MM", "MMND":
		opts := core.DefaultOptions()
		opts.Theta = theta
		opts.Eta = eta
		opts.DisableDecay = name == "MMND"
		return core.New(opts), nil
	default:
		return filter.New(name)
	}
}
