// Command mmbench regenerates the paper's evaluation figures (see
// DESIGN.md's experiment index) on the synthetic Yahoo!-style collection
// and prints each as an aligned table, optionally writing CSV files.
//
// Usage:
//
//	mmbench [-fig all|ablations|everything|4|...|learning|eta|group|merge|decay|lsi|scale|prune|pubsub|store]
//	        [-runs N] [-quick] [-csv DIR] [-seed N] [-prune=false]
//
// "all" runs the paper's figures; "ablations" runs the design-choice
// ablations and extensions (η sweep, RG group-size sweep, merge on/off,
// decay variants, LSI space); "everything" runs both.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mmprofile/internal/bench"
	"mmprofile/internal/metrics"
)

func main() {
	var (
		figFlag = flag.String("fig", "all", "figure to regenerate: 4,5,6,7,8,9,10,11,batch,learning or all")
		runs    = flag.Int("runs", 0, "seeded repetitions per data point (0 = config default)")
		quick   = flag.Bool("quick", false, "use the scaled-down configuration (fast smoke run)")
		csvDir  = flag.String("csv", "", "also write <fig>.csv files into this directory")
		svgDir  = flag.String("svg", "", "also write <fig>.svg charts into this directory")
		seed    = flag.Int64("seed", 0, "base seed (0 = config default)")
		list    = flag.Bool("list", false, "print the experiment index and exit")
		pops    = flag.String("populations", "", "comma-separated subscriber counts for -fig scale/prune (empty = defaults)")
		pshards = flag.Int("pubsub-shards", 0, "broker shard suggestion for -fig pubsub (0 = GOMAXPROCS default)")
		prune   = flag.Bool("prune", true, "threshold-aware match pruning in index figures; -prune=false scans every posting (A/B escape hatch)")
	)
	flag.Parse()

	var populations []int
	if *pops != "" {
		for _, p := range strings.Split(*pops, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "mmbench: bad -populations entry %q\n", p)
				os.Exit(2)
			}
			populations = append(populations, n)
		}
	}

	if *list {
		printIndex()
		return
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.BaseSeed = *seed
	}
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	cfg.PruneOff = !*prune
	h := bench.NewHarness(cfg)

	// The prune figure defaults to the 100k and 1M tiers; -quick scales the
	// vector counts down the way it scales the corpus down.
	pruneSizes := populations
	if len(pruneSizes) == 0 && *quick {
		pruneSizes = []int{20_000, 100_000}
	}

	type runner struct {
		key string
		fn  func() []bench.Figure
	}
	runners := []runner{
		{"4", func() []bench.Figure { return []bench.Figure{h.Fig4()} }},
		{"5", func() []bench.Figure { return []bench.Figure{h.Fig5()} }},
		{"6", func() []bench.Figure { p, _ := h.ThresholdFigures(); return []bench.Figure{p} }},
		{"7", func() []bench.Figure { _, s := h.ThresholdFigures(); return []bench.Figure{s} }},
		{"8", func() []bench.Figure { return []bench.Figure{h.Fig8()} }},
		{"9", func() []bench.Figure { return []bench.Figure{h.Fig9()} }},
		{"10", func() []bench.Figure { return []bench.Figure{h.Fig10()} }},
		{"11", func() []bench.Figure { return []bench.Figure{h.Fig11()} }},
		{"batch", func() []bench.Figure { return []bench.Figure{h.BatchFigure()} }},
		{"learning", func() []bench.Figure { return []bench.Figure{h.LearningRateFigure()} }},
		// Ablations and extensions (not in the paper's figure set; run with
		// -fig ablations or by name).
		{"eta", func() []bench.Figure { return []bench.Figure{h.EtaSweepFigure()} }},
		{"group", func() []bench.Figure { return []bench.Figure{h.GroupSizeFigure()} }},
		{"merge", func() []bench.Figure {
			p, s := h.MergeAblationFigure()
			return []bench.Figure{p, s}
		}},
		{"decay", func() []bench.Figure { return []bench.Figure{h.DecayVariantFigure()} }},
		{"noise", func() []bench.Figure { return []bench.Figure{h.NoiseFigure()} }},
		{"kmeans", func() []bench.Figure {
			p, s := h.BatchClusterFigure()
			return []bench.Figure{p, s}
		}},
		{"lsi", func() []bench.Figure { return []bench.Figure{h.LSIFigure()} }},
		{"scale", func() []bench.Figure { return []bench.Figure{h.ScaleFigure(populations)} }},
		{"prune", func() []bench.Figure { return []bench.Figure{h.PruneFigure(pruneSizes, nil)} }},
		{"pubsub", func() []bench.Figure { return []bench.Figure{h.PubsubFigure(nil, *pshards, 0)} }},
		{"store", func() []bench.Figure { return []bench.Figure{h.StoreLanesFigure(nil, 64)} }},
	}

	ablationKeys := map[string]bool{"eta": true, "group": true, "merge": true, "decay": true, "noise": true, "kmeans": true, "lsi": true, "scale": true, "prune": true, "pubsub": true, "store": true}
	want := strings.Split(*figFlag, ",")

	// -fig ttest prints paired significance tests instead of a figure.
	for _, w := range want {
		if strings.TrimSpace(w) == "ttest" {
			n := cfg.Runs
			if n < 10 {
				n = 10 // t-tests at the figure default of 4 runs have little power
			}
			bench.WriteComparisons(os.Stdout, h.Significance("MM", "RG10", n))
			fmt.Println()
			bench.WriteComparisons(os.Stdout, h.Significance("MM", "RI", n))
			return
		}
	}
	selected := func(key string) bool {
		for _, w := range want {
			w = strings.TrimSpace(w)
			switch {
			case w == key || w == "everything":
				return true
			case w == "all" && !ablationKeys[key]:
				return true
			case w == "ablations" && ablationKeys[key]:
				return true
			}
		}
		return false
	}

	// Figures 6 and 7 share one sweep; when both are selected, run it once.
	if selected("6") && selected("7") {
		runners[2] = runner{"6+7", func() []bench.Figure {
			p, s := h.ThresholdFigures()
			return []bench.Figure{p, s}
		}}
		runners = append(runners[:3], runners[4:]...)
	}

	shiftFigs := map[string]bool{"fig8": true, "fig9": true, "fig10": true, "fig11": true}
	ran := 0
	for _, r := range runners {
		keys := strings.Split(r.key, "+")
		if !selected(keys[0]) && (len(keys) < 2 || !selected(keys[1])) {
			continue
		}
		start := time.Now()
		for _, fig := range r.fn() {
			fig.WriteText(os.Stdout)
			if shiftFigs[fig.ID] {
				fmt.Printf("  docs to recover 95%% of shift-point precision:")
				rt := h.RecoveryTimes(fig)
				for _, s := range fig.Series {
					if rt[s.Label] >= 0 {
						fmt.Printf("  %s=%d", s.Label, rt[s.Label])
					} else {
						fmt.Printf("  %s=never", s.Label)
					}
				}
				fmt.Println()
			}
			fmt.Printf("  [%s: %d runs, %v]\n\n", fig.ID, cfg.Runs, time.Since(start).Round(time.Millisecond))
			if *csvDir != "" {
				if err := writeFile(*csvDir, fig.ID+".csv", func(w *os.File) error {
					fig.WriteCSV(w)
					return nil
				}); err != nil {
					fmt.Fprintln(os.Stderr, "mmbench:", err)
					os.Exit(1)
				}
			}
			if *svgDir != "" {
				fig := fig
				if err := writeFile(*svgDir, fig.ID+".svg", func(w *os.File) error {
					return fig.WriteSVG(w)
				}); err != nil {
					fmt.Fprintln(os.Stderr, "mmbench:", err)
					os.Exit(1)
				}
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "mmbench: no figure matches -fig=%s\n", *figFlag)
		os.Exit(2)
	}
	printMetrics(reg)
}

// printMetrics writes the run's final instrumentation snapshot: one line
// per instrument, histograms as count plus p50/p95/p99. Empty when no
// selected experiment exercised an instrumented subsystem.
func printMetrics(reg *metrics.Registry) {
	exports := reg.Exports()
	if len(exports) == 0 {
		return
	}
	fmt.Println("metrics:")
	for _, e := range exports {
		switch v := e.Value.(type) {
		case metrics.HistogramSnapshot:
			fmt.Printf("  %-32s count=%d p50=%.3gms p95=%.3gms p99=%.3gms\n",
				e.Name, v.Count, v.P50*1e3, v.P95*1e3, v.P99*1e3)
		case int64:
			fmt.Printf("  %-32s %d\n", e.Name, v)
		case float64:
			fmt.Printf("  %-32s %g\n", e.Name, v)
		}
	}
}

func printIndex() {
	rows := [][2]string{
		{"4", "Fig. 4 — niap, top-level categories (RI, RG10, MM)"},
		{"5", "Fig. 5 — niap, second-level categories"},
		{"6", "Fig. 6 — precision vs threshold θ"},
		{"7", "Fig. 7 — profile size vs threshold θ"},
		{"8", "Fig. 8 — partial interest shift"},
		{"9", "Fig. 9 — complete interest shift"},
		{"10", "Fig. 10 — adding an interest"},
		{"11", "Fig. 11 — deleting an interest"},
		{"batch", "§5.2 — batch Rocchio vs incremental learners"},
		{"learning", "§5.1 — learning rate"},
		{"eta", "A1 — adaptability η sweep"},
		{"group", "A2 — Rocchio group-size sweep"},
		{"merge", "A3 — merge operation on/off"},
		{"decay", "A4 — strength-decay variants"},
		{"noise", "A6 — feedback-noise robustness"},
		{"kmeans", "A7 — single-pass vs batch clustering"},
		{"lsi", "A5 — keyword vs LSI space"},
		{"scale", "matching cost vs subscriber count (index vs brute force)"},
		{"prune", "match-pruning effort vs θ (postings scanned, blocks skipped)"},
		{"pubsub", "broker publish throughput vs workers (sharded vs 1-shard)"},
		{"store", "durable append latency and fsyncs/append vs WAL lane count (64 writers)"},
		{"ttest", "paired significance tests (MM vs RG10, MM vs RI)"},
	}
	fmt.Println("experiments (-fig KEY; groups: all, ablations, everything):")
	for _, r := range rows {
		fmt.Printf("  %-9s %s\n", r[0], r[1])
	}
}

func writeFile(dir, name string, write func(*os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}
