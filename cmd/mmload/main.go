// Command mmload drives an mmserver with synthetic load. Two modes:
//
// -mode feedback (the default) subscribes a population of adaptive
// profiles, fans publishers out over the synthetic collection, has every
// subscriber consume (watch) and judge its deliveries, and reports publish
// throughput, round-trip latency percentiles, and delivery counts — the
// adaptation-side workload.
//
// -mode sessions is the c10k-and-up delivery benchmark: it opens one
// server-push session per subscriber (100k+ concurrent connections),
// publishes topic-tagged documents, measures end-to-end delivery latency
// (publish call → frame received), and reconciles every session's
// sequence state so that any delivery lost to queue overflow is observed
// — received + dropped == next_seq per session, or the run exits nonzero.
// Percentiles are appended to -out (results/delivery.csv). With
// -addr pipe the harness runs the full wire.Server stack in-process over
// net.Pipe connections, which is how 100k+ sessions fit under a 20k file
// descriptor limit; any other -addr (host:port or unix:/path) drives a
// real mmserver over sockets.
//
// Usage:
//
//	mmload [-addr 127.0.0.1:7070] [-subscribers 20] [-publishers 4]
//	       [-docs 2000] [-seed 1] [-trace-every 100] [-status localhost:8080]
//	mmload -mode sessions [-addr pipe] [-subscribers 100000] [-topics 100]
//	       [-docs 500] [-publishers 4] [-batch 0] [-queue 128]
//	       [-out results/delivery.csv] [-status localhost:8080]
//
// Sessions mode also prints the top-5 sessions by client-observed gaps
// and cross-checks every session's server-reported drop count against
// the server's subscriber_drops hot-key sketch (in-process in pipe mode,
// via /topz with -status over sockets); a count outside the sketch's
// error band fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mmprofile/internal/corpus"
	"mmprofile/internal/text"
	"mmprofile/internal/trace"
	"mmprofile/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "mmserver address (sessions mode also takes unix:/path, or pipe for in-process)")
		mode        = flag.String("mode", "feedback", "workload: feedback (watch+judge) or sessions (server-push delivery benchmark)")
		subscribers = flag.Int("subscribers", 20, "subscriber connections (sessions mode: concurrent sessions)")
		publishers  = flag.Int("publishers", 4, "publisher connections")
		docs        = flag.Int("docs", 2000, "total pages to publish")
		seed        = flag.Int64("seed", 1, "corpus and workload seed")
		traceEvery  = flag.Int("trace-every", 0, "propagate trace context on every Nth publish, forcing server-side capture (0 = off)")
		statusAddr  = flag.String("status", "", "mmserver -http address; feedback mode prints the slow-trace summary from /tracez, sessions mode cross-checks drops against /topz")
		topics      = flag.Int("topics", 100, "sessions mode: distinct topics (fan-out per doc = subscribers/topics)")
		batch       = flag.Int("batch", 0, "sessions mode: deliveries coalesced per pushed frame (0 = server default)")
		queue       = flag.Int("queue", 128, "sessions mode with -addr pipe: per-subscriber delivery buffer")
		out         = flag.String("out", "results/delivery.csv", "sessions mode: CSV file latency percentiles are appended to")
	)
	flag.Parse()

	switch *mode {
	case "sessions":
		runSessions(sessionsConfig{
			addr:       *addr,
			status:     *statusAddr,
			sessions:   *subscribers,
			publishers: *publishers,
			docs:       *docs,
			topics:     *topics,
			batch:      *batch,
			queue:      *queue,
			out:        *out,
		})
		return
	case "feedback":
	default:
		fail(fmt.Errorf("unknown -mode %q (feedback or sessions)", *mode))
	}

	cfg := corpus.DefaultConfig()
	cfg.Seed = *seed
	coll := corpus.Generate(cfg)
	rng := rand.New(rand.NewSource(*seed))

	// Subscribe the population. Each subscriber seeds its profile with a
	// few words from a randomly chosen page of its "interest" category, so
	// deliveries start immediately.
	for i := 0; i < *subscribers; i++ {
		c, err := wire.Dial(*addr)
		if err != nil {
			fail(err)
		}
		page := coll.Pages[rng.Intn(len(coll.Pages))]
		if err := c.Subscribe(fmt.Sprintf("load-user-%03d", i), "", topicWords(page.HTML, 6)); err != nil {
			fail(err)
		}
		c.Close()
	}
	fmt.Printf("subscribed %d users\n", *subscribers)

	// Consumers: poll deliveries and send feedback (alternating polarity,
	// which exercises the adaptation path server-side).
	stop := make(chan struct{})
	var consumed atomic.Int64
	var consumerWG sync.WaitGroup
	for i := 0; i < *subscribers; i++ {
		consumerWG.Add(1)
		go func(i int) {
			defer consumerWG.Done()
			c, err := wire.Dial(*addr)
			if err != nil {
				return
			}
			defer c.Close()
			user := fmt.Sprintf("load-user-%03d", i)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ds, err := c.Watch(user, 32, 500*time.Millisecond)
				if err != nil {
					return
				}
				for _, d := range ds {
					// Mostly-positive judgments (every fifth negative)
					// exercise the adaptation path without starving fresh
					// single-vector profiles, which one early negative
					// would decay away.
					n := consumed.Add(1)
					_ = c.Feedback(user, d.Doc, n%5 != 0)
				}
			}
		}(i)
	}

	// Publishers: split the document budget, measure per-publish RTT.
	// Traced publishes also record their (latency, trace id) pair so the
	// summary can correlate straggler RTTs with server-side span trees.
	type tracedPublish struct {
		lat   time.Duration
		trace string
	}
	var pubWG sync.WaitGroup
	latencies := make([][]time.Duration, *publishers)
	tracedLats := make([][]tracedPublish, *publishers)
	var published, traced atomic.Int64
	start := time.Now()
	for p := 0; p < *publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			c, err := wire.Dial(*addr)
			if err != nil {
				return
			}
			defer c.Close()
			prng := rand.New(rand.NewSource(*seed + int64(p)))
			n := *docs / *publishers
			lats := make([]time.Duration, 0, n)
			for i := 0; i < n; i++ {
				page := coll.Pages[prng.Intn(len(coll.Pages))]
				// Client-driven sampling: a propagated context forces the
				// server to capture this request regardless of its own
				// head-sampling rate, so a load run can collect traces from
				// a production-tuned (rarely sampling) server.
				ctx := ""
				if *traceEvery > 0 && i%*traceEvery == 0 {
					ctx = trace.FormatContext(
						trace.TraceID(prng.Uint64()|1), trace.SpanID(prng.Uint64()|1))
				}
				t0 := time.Now()
				_, _, tid, err := c.PublishTrace(page.HTML, ctx)
				if err != nil {
					fmt.Fprintln(os.Stderr, "mmload: publish:", err)
					return
				}
				rtt := time.Since(t0)
				if tid != "" {
					traced.Add(1)
					tracedLats[p] = append(tracedLats[p], tracedPublish{lat: rtt, trace: tid})
				}
				lats = append(lats, rtt)
				published.Add(1)
			}
			latencies[p] = lats
		}(p)
	}
	pubWG.Wait()
	elapsed := time.Since(start)
	// Let consumers drain the tail, then stop them.
	time.Sleep(700 * time.Millisecond)
	close(stop)
	consumerWG.Wait()

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	fmt.Printf("\npublished %d pages in %v (%.0f pages/s, %d publishers)\n",
		published.Load(), elapsed.Round(time.Millisecond),
		float64(published.Load())/elapsed.Seconds(), *publishers)
	if len(all) > 0 {
		fmt.Printf("publish RTT: p50 %v  p95 %v  p99 %v  max %v\n",
			pct(all, 50), pct(all, 95), pct(all, 99), all[len(all)-1])
	}
	fmt.Printf("deliveries consumed (with feedback): %d\n", consumed.Load())

	if traced.Load() > 0 {
		fmt.Printf("traced publishes: %d (server captured; inspect with mmclient trace -http ...)\n", traced.Load())
		// Straggler correlation: the slowest traced RTTs, each with the
		// trace id the server captured for it, so "why was the tail slow"
		// goes straight from this summary to a span tree.
		var stragglers []tracedPublish
		for _, tl := range tracedLats {
			stragglers = append(stragglers, tl...)
		}
		sort.Slice(stragglers, func(i, j int) bool { return stragglers[i].lat > stragglers[j].lat })
		if len(stragglers) > 5 {
			stragglers = stragglers[:5]
		}
		for _, s := range stragglers {
			fmt.Printf("  straggler: %v  trace %s  (mmclient trace -http ... -id %s)\n",
				s.lat.Round(time.Microsecond), s.trace, s.trace)
		}
	}

	c, err := wire.Dial(*addr)
	if err == nil {
		if st, err := c.Stats(); err == nil {
			fmt.Printf("server: %d published, %d delivered (%d dropped), %d feedbacks, index %d vectors\n",
				st.Published, st.Deliveries, st.Dropped, st.Feedbacks, st.IndexVectors)
		}
		c.Close()
	}

	if *statusAddr != "" {
		if err := slowSummary(*statusAddr); err != nil {
			fmt.Fprintln(os.Stderr, "mmload: slow-trace summary:", err)
		}
	}
}

// slowSummary reads the server's /tracez and reports the slow ring — the
// requests that exceeded -trace-slow during the run, which is what a load
// test is usually hunting for.
func slowSummary(addr string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + "/tracez")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /tracez: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var out struct {
		Enabled  bool           `json:"enabled"`
		Snapshot trace.Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return err
	}
	if !out.Enabled {
		fmt.Println("\nserver tracing disabled (start mmserver with -trace-sample / -trace-slow)")
		return nil
	}
	fmt.Printf("\nserver traces: %d sampled, %d slow-captured (threshold %.3gms)\n",
		out.Snapshot.Sampled, out.Snapshot.SlowCaptured, out.Snapshot.SlowThresholdMS)
	slow := out.Snapshot.Slow
	sort.Slice(slow, func(i, j int) bool { return slow[i].DurationMS > slow[j].DurationMS })
	if len(slow) > 5 {
		slow = slow[:5]
	}
	for _, ts := range slow {
		fmt.Printf("  slow: %s  %-22s %9.3fms  (mmclient trace -http %s -id %s)\n",
			ts.Trace, ts.Root, ts.DurationMS, addr, ts.Trace)
	}
	return nil
}

// topicWords extracts a page's k most frequent pipeline terms — after
// stop-listing, high-frequency terms are the topical ones — to use as a
// subscription seed.
func topicWords(page string, k int) []string {
	counts := map[string]int{}
	for _, t := range text.NewPipeline().Terms(page) {
		counts[t]++
	}
	terms := make([]string, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if counts[terms[i]] != counts[terms[j]] {
			return counts[terms[i]] > counts[terms[j]]
		}
		return terms[i] < terms[j]
	})
	if len(terms) > k {
		terms = terms[:k]
	}
	return terms
}

func pct(sorted []time.Duration, p int) time.Duration {
	i := p * len(sorted) / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmload:", err)
	os.Exit(1)
}
