package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mmprofile/internal/pubsub"
	"mmprofile/internal/text"
	"mmprofile/internal/topk"
	"mmprofile/internal/wire"
)

// sessionsConfig shapes one -mode sessions run.
type sessionsConfig struct {
	addr       string // "pipe" = in-process server over net.Pipe
	status     string // mmserver -http address, for the /topz cross-check
	sessions   int
	publishers int
	docs       int
	topics     int
	batch      int
	queue      int
	out        string
}

// recvRec is one received delivery: the document and when it arrived,
// as nanoseconds from the run's monotonic anchor.
type recvRec struct {
	doc int64
	at  int64
}

// sessionState is one subscriber's end of the benchmark: its live session
// plus the receive log its consumer goroutine appends to (single-writer;
// read only after the consumer exits).
type sessionState struct {
	sess *wire.Session
	recv []recvRec
}

// runSessions is the c10k-and-up delivery benchmark: subscribers/topics
// sessions per topic, each holding one server-push connection; publishers
// emit topic-tagged documents; latency is publish-call-to-frame-received.
// After the drain every session's sequence state is reconciled — any
// delivery neither received nor accounted for by the server's drop counter
// is unobserved loss and fails the run.
func runSessions(cfg sessionsConfig) {
	if cfg.topics < 1 {
		cfg.topics = 1
	}
	if cfg.topics > cfg.sessions {
		cfg.topics = cfg.sessions
	}

	dial, shutdown, localDrops := transport(cfg)
	defer shutdown()

	// Topic vocabulary: both the documents and the subscription keywords go
	// through the same text pipeline, so a topic's sessions match its
	// documents with cosine 1 regardless of stemming. Candidate tokens whose
	// stem collides with an earlier topic's are skipped — otherwise two
	// topics would silently merge and inflate the fan-out.
	pipe := text.NewPipeline()
	topicDocs := make([]string, 0, cfg.topics)
	topicKeywords := make([][]string, 0, cfg.topics)
	seen := make(map[string]bool, cfg.topics)
	for i := 0; len(topicDocs) < cfg.topics; i++ {
		tok := topicToken(i)
		doc := fmt.Sprintf("%s %s %s %s", tok, tok, tok, tok)
		terms := pipe.Terms(doc)
		if len(terms) == 0 || seen[terms[0]] {
			continue
		}
		seen[terms[0]] = true
		topicDocs = append(topicDocs, doc)
		topicKeywords = append(topicKeywords, terms)
	}

	// Open every session up front: dial, subscribe, switch to push mode,
	// and start its consumer. A worker pool keeps socket transports from
	// serializing 100k dials.
	fmt.Printf("opening %d sessions over %d topics (transport %s)...\n",
		cfg.sessions, cfg.topics, cfg.addr)
	states := make([]*sessionState, cfg.sessions)
	start := time.Now()
	var totalReceived atomic.Int64
	var consumerWG sync.WaitGroup
	openErr := parallelFor(cfg.sessions, 64, func(i int) error {
		c, err := dial()
		if err != nil {
			return err
		}
		user := fmt.Sprintf("sess-%06d", i)
		if err := c.Subscribe(user, "", topicKeywords[i%cfg.topics]); err != nil {
			c.Close()
			return err
		}
		sess, err := c.Session(user, cfg.batch)
		if err != nil {
			c.Close()
			return err
		}
		st := &sessionState{sess: sess}
		states[i] = st
		consumerWG.Add(1)
		go func() {
			defer consumerWG.Done()
			for {
				frame, err := sess.Recv()
				if err != nil {
					return
				}
				now := time.Since(start).Nanoseconds()
				for _, d := range frame.Deliveries {
					st.recv = append(st.recv, recvRec{doc: d.Doc, at: now})
				}
				totalReceived.Add(int64(len(frame.Deliveries)))
				if frame.Closed {
					return
				}
			}
		}()
		return nil
	})
	if openErr != nil {
		fail(fmt.Errorf("opening sessions: %w", openErr))
	}
	opened := time.Since(start)
	fmt.Printf("sessions open: %d in %v (%.0f/s)\n",
		cfg.sessions, opened.Round(time.Millisecond), float64(cfg.sessions)/opened.Seconds())

	// Publish the topic-tagged documents, recording each doc's send time
	// (captured before the publish call, so latency includes the full
	// publish round trip and can never be negative).
	var pubMu sync.Mutex
	publishT0 := make(map[int64]int64, cfg.docs)
	var pubWG sync.WaitGroup
	pubStart := time.Now()
	var nextDoc atomic.Int64
	for p := 0; p < cfg.publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			c, err := dial()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mmload: publisher dial:", err)
				return
			}
			defer c.Close()
			for {
				n := int(nextDoc.Add(1)) - 1
				if n >= cfg.docs {
					return
				}
				t0 := time.Since(start).Nanoseconds()
				doc, _, err := c.Publish(topicDocs[n%cfg.topics])
				if err != nil {
					fmt.Fprintln(os.Stderr, "mmload: publish:", err)
					return
				}
				pubMu.Lock()
				publishT0[doc] = t0
				pubMu.Unlock()
			}
		}()
	}
	pubWG.Wait()
	pubElapsed := time.Since(pubStart)
	fmt.Printf("published %d docs in %v (%.0f docs/s)\n",
		cfg.docs, pubElapsed.Round(time.Millisecond), float64(cfg.docs)/pubElapsed.Seconds())

	// Quiesce: the run is drained when the global receive count holds still
	// for 2s (bounded at 60s so a wedged pump can't hang the benchmark).
	last, stableMS := int64(-1), 0
	for waited := 0; waited < 60_000 && stableMS < 2_000; waited += 200 {
		time.Sleep(200 * time.Millisecond)
		if cur := totalReceived.Load(); cur == last {
			stableMS += 200
		} else {
			last, stableMS = cur, 0
		}
	}

	// Tear down: closing each connection ends its server pump and unblocks
	// its consumer's Recv.
	for _, st := range states {
		st.sess.Close()
	}
	consumerWG.Wait()

	// Reconcile every session's sequence state. received + dropped must
	// equal next_seq exactly: the drop-oldest policy may discard deliveries
	// under backpressure, but each discard must be visible in the drop
	// counter (and as a gap in the received sequence numbers).
	var received, dropped, gaps, lossSessions, unobserved int64
	for _, st := range states {
		r, d, n, g := st.sess.Received(), st.sess.Dropped(), st.sess.NextSeq(), st.sess.Gaps()
		received += int64(r)
		dropped += int64(d)
		gaps += int64(g)
		if r+d != n {
			lossSessions++
			unobserved += int64(n) - int64(r) - int64(d)
		}
	}
	fmt.Printf("deliveries: %d received, %d dropped (server-reported), %d observed as sequence gaps\n",
		received, dropped, gaps)

	// Hot-key cross-check: the sessions that observed the most gaps should
	// be the keys the server's subscriber_drops sketch ranks hottest, and
	// every session's authoritative drop count must sit inside its sketch
	// entry's [count−err, count] band (or below the sketch's error bound
	// when untracked). Pipe mode reads the in-process broker's sketch
	// directly; socket mode reads /topz via -status.
	dropsFailed := reportDrops(cfg, states, localDrops)

	// End-to-end latency: join every receive record against its doc's
	// publish time.
	var lats []time.Duration
	for _, st := range states {
		for _, r := range st.recv {
			if t0, ok := publishT0[r.doc]; ok {
				lats = append(lats, time.Duration(r.at-t0))
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50, p95, p99 := pct(lats, 50), pct(lats, 95), pct(lats, 99)
	if len(lats) > 0 {
		fmt.Printf("delivery latency (publish call → frame received): p50 %v  p95 %v  p99 %v  max %v\n",
			p50, p95, p99, lats[len(lats)-1])
	}

	if cfg.out != "" {
		if err := appendDeliveryCSV(cfg.out, cfg, received, dropped, p50, p95, p99); err != nil {
			fmt.Fprintln(os.Stderr, "mmload: write csv:", err)
		} else {
			fmt.Printf("appended percentiles to %s\n", cfg.out)
		}
	}

	if lossSessions > 0 {
		fail(fmt.Errorf("UNOBSERVED LOSS: %d session(s) with received+dropped != next_seq (%d deliveries unaccounted for)",
			lossSessions, unobserved))
	}
	if dropsFailed {
		fail(fmt.Errorf("ATTRIBUTION MISMATCH: server subscriber_drops sketch disagrees with session drop counts"))
	}
	fmt.Printf("no unobserved loss: received + dropped == next_seq across all %d sessions\n", cfg.sessions)
}

// reportDrops prints the top-5 sessions by client-observed gaps and
// cross-checks each session's server-reported drop count against the
// server's subscriber_drops sketch. The space-saving invariant makes the
// check exact per tracked key — count−err ≤ true ≤ count — and bounds
// untracked keys by the sketch's epsilon. Returns true when any session
// falls outside its band (which, against a freshly started server, means
// attribution lost or invented drops).
func reportDrops(cfg sessionsConfig, states []*sessionState, localDrops func() (topk.Snapshot, bool)) bool {
	type row struct {
		user string
		gaps uint64
		drop uint64
	}
	rows := make([]row, 0, len(states))
	for i, st := range states {
		rows = append(rows, row{
			user: fmt.Sprintf("sess-%06d", i),
			gaps: st.sess.Gaps(),
			drop: st.sess.Dropped(),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].gaps != rows[j].gaps {
			return rows[i].gaps > rows[j].gaps
		}
		return rows[i].user < rows[j].user
	})

	var snap topk.Snapshot
	switch {
	case localDrops != nil:
		var ok bool
		if snap, ok = localDrops(); !ok {
			fmt.Println("subscriber_drops sketch not available in-process; skipping cross-check")
			return false
		}
	case cfg.status != "":
		var err error
		if snap, err = fetchDrops(cfg.status); err != nil {
			fmt.Fprintln(os.Stderr, "mmload: /topz cross-check skipped:", err)
			return false
		}
	default:
		return false // socket run without -status: nothing to check against
	}

	byKey := make(map[string]topk.Entry, len(snap.Entries))
	for _, e := range snap.Entries {
		byKey[e.Key] = e
	}

	if rows[0].gaps > 0 {
		fmt.Println("top droppers (client-observed gaps vs server sketch):")
		for _, r := range rows[:min(5, len(rows))] {
			if r.gaps == 0 {
				break
			}
			if e, ok := byKey[r.user]; ok {
				fmt.Printf("  %-12s %6d gap(s)  sketch %.0f ±%.0f\n", r.user, r.gaps, e.Count, e.Err)
			} else {
				fmt.Printf("  %-12s %6d gap(s)  sketch untracked (ε %.0f)\n", r.user, r.gaps, snap.Epsilon)
			}
		}
	}

	bad := 0
	for _, r := range rows {
		d := float64(r.drop)
		if e, ok := byKey[r.user]; ok {
			if e.Count < d || e.Count-e.Err > d {
				bad++
				if bad <= 5 {
					fmt.Fprintf(os.Stderr, "mmload: %s dropped %d but sketch says %.0f ±%.0f\n",
						r.user, r.drop, e.Count, e.Err)
				}
			}
		} else if d > snap.Epsilon {
			bad++
			if bad <= 5 {
				fmt.Fprintf(os.Stderr, "mmload: %s dropped %d yet is untracked (sketch ε %.0f)\n",
					r.user, r.drop, snap.Epsilon)
			}
		}
	}
	if bad == 0 {
		fmt.Printf("drop attribution agrees with the server sketch across all %d sessions (%d tracked, ε %.0f)\n",
			len(states), snap.Tracked, snap.Epsilon)
	}
	return bad > 0
}

// fetchDrops reads the subscriber_drops dimension from a status listener's
// /topz, asking for every tracked entry.
func fetchDrops(addr string) (topk.Snapshot, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + "/topz?dim=subscriber_drops&k=1048576")
	if err != nil {
		return topk.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return topk.Snapshot{}, fmt.Errorf("GET /topz: %s", resp.Status)
	}
	var out struct {
		Dimensions []topk.Snapshot `json:"dimensions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return topk.Snapshot{}, err
	}
	if len(out.Dimensions) == 0 {
		return topk.Snapshot{}, fmt.Errorf("server reports no subscriber_drops dimension")
	}
	return out.Dimensions[0], nil
}

// transport builds the dial function for the configured address: "pipe"
// runs the full wire.Server stack in-process and hands out net.Pipe
// connections (no file descriptors, no ports — how 100k+ sessions fit on
// one machine with a 20k fd limit); anything else dials a real server.
// In pipe mode, drops reads the in-process broker's subscriber_drops
// sketch for the post-run attribution cross-check; over sockets it is nil
// and the cross-check goes through -status instead.
func transport(cfg sessionsConfig) (dial func() (*wire.Client, error), shutdown func(), drops func() (topk.Snapshot, bool)) {
	if cfg.addr != "pipe" {
		return func() (*wire.Client, error) { return wire.Dial(cfg.addr) }, func() {}, nil
	}
	broker := pubsub.New(pubsub.Options{QueueSize: cfg.queue})
	srv := wire.NewServer(broker, func(string, ...any) {})
	dial = func() (*wire.Client, error) {
		local, remote := net.Pipe()
		srv.ServeConn(remote)
		return wire.NewClient(local), nil
	}
	drops = func() (topk.Snapshot, bool) {
		dim, ok := broker.Top().Find("subscriber_drops")
		if !ok {
			return topk.Snapshot{}, false
		}
		return dim.Snapshot(0), true
	}
	return dial, func() { srv.Close() }, drops
}

// parallelFor runs fn(0..n-1) on up to workers goroutines and returns the
// first error (the remaining items still run; session slots must be filled
// or nil-checked either way, and a failed open fails the whole run).
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

// topicToken derives a deterministic, letters-only token for topic i, so
// neither the tokenizer nor the stop list can split or drop it.
func topicToken(i int) string {
	b := []byte("topic")
	for {
		b = append(b, byte('a'+i%26))
		i /= 26
		if i == 0 {
			return string(b)
		}
	}
}

// appendDeliveryCSV appends one row of run results to path, creating it
// (and its directory) with a header first when absent.
func appendDeliveryCSV(path string, cfg sessionsConfig, received, dropped int64, p50, p95, p99 time.Duration) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if info.Size() == 0 {
		if err := w.Write([]string{
			"transport", "sessions", "topics", "publishers", "docs",
			"received", "dropped", "p50_ms", "p95_ms", "p99_ms",
		}); err != nil {
			return err
		}
	}
	ms := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
	}
	transportName := "tcp"
	switch {
	case cfg.addr == "pipe":
		transportName = "pipe"
	case strings.HasPrefix(cfg.addr, "unix:"):
		transportName = "unix"
	}
	if err := w.Write([]string{
		transportName,
		strconv.Itoa(cfg.sessions), strconv.Itoa(cfg.topics),
		strconv.Itoa(cfg.publishers), strconv.Itoa(cfg.docs),
		strconv.FormatInt(received, 10), strconv.FormatInt(dropped, 10),
		ms(p50), ms(p95), ms(p99),
	}); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}
