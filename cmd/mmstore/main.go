// Command mmstore inspects an mmserver state directory (see
// internal/store): the current snapshot, the journal, and the profiles
// that recovery would reconstruct.
//
// Usage:
//
//	mmstore -state DIR           # summary of snapshot + journal + users
//	mmstore -state DIR -user ID  # one restored profile in detail
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mmprofile/internal/filter"
	"mmprofile/internal/store"

	_ "mmprofile/internal/core"    // register MM/MMND for restore
	_ "mmprofile/internal/rocchio" // register baselines for restore
)

func main() {
	var (
		stateDir = flag.String("state", "", "state directory")
		user     = flag.String("user", "", "show one user's restored profile")
	)
	flag.Parse()
	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "mmstore: need -state DIR")
		os.Exit(2)
	}

	st, err := store.Open(*stateDir, store.Options{})
	if err != nil {
		fail(err)
	}
	defer st.Close()
	profiles, events, err := st.Load()
	if err != nil {
		fail(err)
	}

	if *user == "" {
		summarize(profiles, events)
		return
	}
	learners, err := store.Restore(profiles, events)
	if err != nil {
		fail(err)
	}
	l, ok := learners[*user]
	if !ok {
		fail(fmt.Errorf("no such user %q (known: %v)", *user, store.Users(profiles, events)))
	}
	describe(*user, l)
}

func summarize(profiles []store.ProfileRecord, events []store.Event) {
	fmt.Printf("snapshot records: %d\n", len(profiles))
	var snapBytes int
	for _, p := range profiles {
		snapBytes += len(p.Data)
	}
	fmt.Printf("snapshot bytes:   %d\n", snapBytes)
	counts := map[store.EventType]int{}
	for _, ev := range events {
		counts[ev.Type]++
	}
	fmt.Printf("journal events:   %d (%d feedback, %d subscribe, %d unsubscribe)\n",
		len(events), counts[store.EventFeedback], counts[store.EventSubscribe], counts[store.EventUnsubscribe])
	users := store.Users(profiles, events)
	fmt.Printf("users after replay: %d\n", len(users))
	for _, u := range users {
		fmt.Printf("  %s\n", u)
	}
}

func describe(user string, l filter.Learner) {
	fmt.Printf("user:         %s\n", user)
	fmt.Printf("learner:      %s\n", l.Name())
	fmt.Printf("profile size: %d vector(s)\n", l.ProfileSize())
	if vs, ok := l.(filter.VectorSource); ok {
		for i, v := range vs.ProfileVectors() {
			if i >= 10 {
				fmt.Printf("  … and %d more\n", l.ProfileSize()-10)
				break
			}
			fmt.Printf("  #%d (%d terms): %s\n", i+1, v.Len(), strings.Join(v.TopTerms(6), " "))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmstore:", err)
	os.Exit(1)
}
