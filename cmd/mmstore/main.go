// Command mmstore inspects an mmserver state directory (see
// internal/store): the manifest-committed lane layout, each lane's
// segment and journal (including crash damage: torn tails and committed
// extent), and the profiles that recovery would reconstruct. The
// directory is opened read-only, so it is safe to point at a live
// server's state.
//
// Usage:
//
//	mmstore -state DIR           # summary: manifest epoch, lanes, users
//	mmstore -state DIR -user ID  # one restored profile in detail
//	mmstore lanes -state DIR     # per-lane generation, bytes, dirty counts
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mmprofile/internal/filter"
	"mmprofile/internal/store"

	_ "mmprofile/internal/core"    // register MM/MMND for restore
	_ "mmprofile/internal/rocchio" // register baselines for restore
)

func main() {
	// The lanes subcommand gets its own flag set so both spellings parse:
	// `mmstore lanes -state DIR`.
	if len(os.Args) > 1 && os.Args[1] == "lanes" {
		fs := flag.NewFlagSet("lanes", flag.ExitOnError)
		stateDir := fs.String("state", "", "state directory")
		fs.Parse(os.Args[2:])
		if *stateDir == "" {
			fmt.Fprintln(os.Stderr, "mmstore lanes: need -state DIR")
			os.Exit(2)
		}
		lanes(*stateDir)
		return
	}
	var (
		stateDir = flag.String("state", "", "state directory")
		user     = flag.String("user", "", "show one user's restored profile")
	)
	flag.Parse()
	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "mmstore: need -state DIR")
		os.Exit(2)
	}

	// Read-only: an inspector must never mutate the state directory (the
	// writing open repairs torn tails in place and bumps no-op fsyncs), and
	// it must still work on a log a live server has open or one too
	// corrupt for a writer to accept.
	st, err := store.Open(*stateDir, store.Options{ReadOnly: true})
	if err != nil {
		fail(err)
	}
	defer st.Close()
	info, infoErr := st.WALInfo()
	profiles, events, err := st.Load()
	if err != nil {
		// Surface the journal damage before giving up on the replay.
		if infoErr != nil {
			fmt.Fprintf(os.Stderr, "mmstore: journal generation %d: %v (%d record(s) readable, %d committed byte(s))\n",
				info.Seq, infoErr, info.Records, info.Committed)
		}
		fail(err)
	}

	if *user == "" {
		summarize(profiles, events, info)
		return
	}
	learners, err := store.Restore(profiles, events)
	if err != nil {
		fail(err)
	}
	l, ok := learners[*user]
	if !ok {
		fail(fmt.Errorf("no such user %q (known: %v)", *user, store.Users(profiles, events)))
	}
	describe(*user, l)
}

// lanes prints the per-lane breakdown: each lane's generation, its
// checkpoint segment, and its journal's committed/torn extents and
// dirty-profile count — the inputs the incremental checkpoint policy
// works from.
func lanes(stateDir string) {
	st, err := store.Open(stateDir, store.Options{ReadOnly: true})
	if err != nil {
		fail(err)
	}
	defer st.Close()
	infos, infoErr := st.LaneInfos()
	fmt.Printf("%-5s %-4s %-9s %-10s %-10s %-6s %-9s %-10s\n",
		"lane", "gen", "segprofs", "segbytes", "committed", "torn", "records", "dirty")
	for _, li := range infos {
		fmt.Printf("%-5d %-4d %-9d %-10d %-10d %-6d %-9d %-10d\n",
			li.Lane, li.Gen, li.SegProfiles, li.SegBytes,
			li.Committed, li.Torn, li.Records, li.DirtyUsers)
	}
	if infoErr != nil {
		fail(infoErr)
	}
}

func summarize(profiles []store.ProfileRecord, events []store.Event, info store.WALInfo) {
	fmt.Printf("manifest epoch:   %d\n", info.Seq)
	fmt.Printf("wal lanes:        %d\n", info.Lanes)
	fmt.Printf("segment records:  %d\n", len(profiles))
	var snapBytes int
	for _, p := range profiles {
		snapBytes += len(p.Data)
	}
	fmt.Printf("segment bytes:    %d\n", snapBytes)
	counts := map[store.EventType]int{}
	for _, ev := range events {
		counts[ev.Type]++
	}
	fmt.Printf("journal events:   %d (%d feedback, %d subscribe, %d unsubscribe)\n",
		len(events), counts[store.EventFeedback], counts[store.EventSubscribe], counts[store.EventUnsubscribe])
	fmt.Printf("journal bytes:    %d committed", info.Committed)
	if info.Torn > 0 {
		// A torn tail is a crash artifact, not corruption: the next writing
		// open will truncate it away.
		fmt.Printf(" + %d torn (crash artifact; repaired on next server start)", info.Torn)
	}
	fmt.Println()
	users := store.Users(profiles, events)
	fmt.Printf("users after replay: %d\n", len(users))
	for _, u := range users {
		fmt.Printf("  %s\n", u)
	}
}

func describe(user string, l filter.Learner) {
	fmt.Printf("user:         %s\n", user)
	fmt.Printf("learner:      %s\n", l.Name())
	fmt.Printf("profile size: %d vector(s)\n", l.ProfileSize())
	if vs, ok := l.(filter.VectorSource); ok {
		for i, v := range vs.ProfileVectors() {
			if i >= 10 {
				fmt.Printf("  … and %d more\n", l.ProfileSize()-10)
				break
			}
			fmt.Printf("  #%d (%d terms): %s\n", i+1, v.Len(), strings.Join(v.TopTerms(6), " "))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmstore:", err)
	os.Exit(1)
}
