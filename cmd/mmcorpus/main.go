// Command mmcorpus generates the synthetic Yahoo!-style collection used by
// the experiments and either writes it to disk as a category-structured
// tree of HTML files (consumable by `mmprofile -data` or any external
// tool) or prints collection statistics.
//
// Usage:
//
//	mmcorpus -out DIR [-seed N] [-tops 10] [-subs 10] [-pages 9]
//	mmcorpus -stats [-seed N] ...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mmprofile/internal/corpus"
	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

func main() {
	var (
		out   = flag.String("out", "", "directory to write the collection into")
		stats = flag.Bool("stats", false, "print collection statistics instead of writing files")
		seed  = flag.Int64("seed", 1, "generation seed")
		tops  = flag.Int("tops", 10, "top-level categories")
		subs  = flag.Int("subs", 10, "second-level categories per top-level one")
		pages = flag.Int("pages", 9, "pages per second-level category")
	)
	flag.Parse()
	if *out == "" && !*stats {
		fmt.Fprintln(os.Stderr, "mmcorpus: need -out DIR or -stats")
		os.Exit(2)
	}

	cfg := corpus.DefaultConfig()
	cfg.Seed = *seed
	cfg.TopCategories = *tops
	cfg.SubPerTop = *subs
	cfg.PagesPerSub = *pages
	coll := corpus.Generate(cfg)

	if *out != "" {
		if err := write(coll, *out); err != nil {
			fmt.Fprintln(os.Stderr, "mmcorpus:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d pages under %s\n", len(coll.Pages), *out)
	}
	if *stats {
		printStats(coll)
	}
}

func write(coll *corpus.Collection, out string) error {
	for _, p := range coll.Pages {
		dir := filepath.Join(out,
			fmt.Sprintf("C%d", p.Cat.Top),
			fmt.Sprintf("C%d%d", p.Cat.Top, p.Cat.Sub))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("page-%04d.html", p.ID))
		if err := os.WriteFile(path, []byte(p.HTML), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func printStats(coll *corpus.Collection) {
	ds := coll.Vectorize(text.NewPipeline())
	var sameSub, sameTop, cross float64
	var nSub, nTop, nCross int
	// Sample pairs rather than the full quadratic set on big collections.
	step := 1
	if len(ds.Docs) > 400 {
		step = len(ds.Docs) / 400
	}
	for i := 0; i < len(ds.Docs); i += step {
		for j := i + 1; j < len(ds.Docs); j += step {
			a, b := ds.Docs[i], ds.Docs[j]
			sim := vsm.Cosine(a.Vec, b.Vec)
			switch {
			case a.Cat == b.Cat:
				sameSub += sim
				nSub++
			case a.Cat.Top == b.Cat.Top:
				sameTop += sim
				nTop++
			default:
				cross += sim
				nCross++
			}
		}
	}
	fmt.Printf("pages:               %d\n", len(ds.Docs))
	fmt.Printf("vocabulary (stems):  %d\n", ds.Stats.VocabularySize())
	fmt.Printf("avg length (terms):  %.1f\n", ds.Stats.AvgLen())
	if nSub > 0 && nTop > 0 && nCross > 0 {
		fmt.Printf("avg cosine same-sub: %.3f\n", sameSub/float64(nSub))
		fmt.Printf("avg cosine same-top: %.3f\n", sameTop/float64(nTop))
		fmt.Printf("avg cosine cross:    %.3f\n", cross/float64(nCross))
	}
}
