package main

import (
	"fmt"
	"time"

	"mmprofile/internal/topk"
)

// evictScanK bounds how many of the hottest droppers are examined per
// tick; a subscriber pathological enough to evict is by definition near
// the top of the drops dimension.
const evictScanK = 32

// dropEvictor implements mmserver -evict-drop-rate: every sampler tick
// it diffs the subscriber_drops sketch against the previous tick and
// closes the push sessions of any subscriber whose drop rate stayed
// above the limit for `windows` consecutive ticks. Sketch counts are
// cumulative, so the per-tick delta is exact for a key tracked across
// both ticks; a key that just entered the sketch (whose count may carry
// takeover error) is baselined for one tick before being judged. Only
// the sampler goroutine touches the evictor, so it needs no lock.
type dropEvictor struct {
	limit   float64 // drops/second that counts as a breach
	windows int     // consecutive breaching ticks before a kick
	kick    func(user, reason string) int

	lastAt time.Time
	last   map[string]float64 // previous tick's cumulative counts
	streak map[string]int
}

func newDropEvictor(limit float64, windows int, kick func(user, reason string) int) *dropEvictor {
	if windows < 1 {
		windows = 1
	}
	return &dropEvictor{
		limit:   limit,
		windows: windows,
		kick:    kick,
		last:    make(map[string]float64),
		streak:  make(map[string]int),
	}
}

// tick advances the evictor by one window using the current state of the
// drops dimension.
func (e *dropEvictor) tick(now time.Time, dim topk.Dimension) {
	snap := dim.Snapshot(evictScanK)
	cur := make(map[string]float64, len(snap.Entries))
	for _, ent := range snap.Entries {
		cur[ent.Key] = ent.Count
	}
	if dt := now.Sub(e.lastAt).Seconds(); !e.lastAt.IsZero() && dt > 0 {
		for user, count := range cur {
			prev, seen := e.last[user]
			if !seen {
				continue // baseline new sketch entries before judging them
			}
			rate := (count - prev) / dt
			if rate <= e.limit {
				delete(e.streak, user)
				continue
			}
			e.streak[user]++
			if e.streak[user] >= e.windows {
				e.kick(user, fmt.Sprintf("drop rate %.1f/s for %d consecutive windows (limit %.1f/s)",
					rate, e.streak[user], e.limit))
				delete(e.streak, user)
			}
		}
		// A key that fell out of the top-K has stopped dropping fast.
		for user := range e.streak {
			if _, ok := cur[user]; !ok {
				delete(e.streak, user)
			}
		}
	}
	e.lastAt = now
	e.last = cur
}
