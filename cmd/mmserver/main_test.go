package main

import (
	"flag"
	"path/filepath"
	"testing"
	"time"

	"mmprofile/internal/obs"
)

// parse runs the config's flag surface over args, as main does.
func parse(t *testing.T, args ...string) config {
	t.Helper()
	fs := flag.NewFlagSet("mmserver", flag.ContinueOnError)
	var cfg config
	cfg.register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestConfigDefaults checks the zero-flag configuration: no tracer (the
// publish hot path stays untraced), no durability, paper-default threshold.
func TestConfigDefaults(t *testing.T) {
	cfg := parse(t)
	if cfg.threshold != 0.25 || cfg.queue != 128 || cfg.retention != 4096 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.tracer() != nil {
		t.Error("tracing enabled without trace flags")
	}
	opts := cfg.brokerOptions(nil)
	if opts.Trace != nil {
		t.Error("broker options carry a tracer without trace flags")
	}
	st := cfg.storeOptions(nil)
	if st.Durable || st.SyncInterval != 0 {
		t.Errorf("store options = %+v", st)
	}
	if !cfg.prune || opts.NoPrune {
		t.Error("match pruning must default to on")
	}
}

// TestConfigPruneFlag pins the -prune=false escape hatch reaching the
// broker as NoPrune.
func TestConfigPruneFlag(t *testing.T) {
	cfg := parse(t, "-prune=false")
	if opts := cfg.brokerOptions(nil); !opts.NoPrune {
		t.Error("-prune=false did not set NoPrune")
	}
	cfg = parse(t, "-prune=true")
	if opts := cfg.brokerOptions(nil); opts.NoPrune {
		t.Error("-prune=true set NoPrune")
	}
}

// TestConfigTraceFlags checks -trace-sample / -trace-slow build an enabled
// tracer and wire it into the broker options.
func TestConfigTraceFlags(t *testing.T) {
	cfg := parse(t, "-trace-sample", "0.5", "-trace-slow", "50ms")
	tr := cfg.tracer()
	if tr == nil || !tr.Enabled() {
		t.Fatal("trace flags did not enable tracing")
	}
	snap := tr.Snapshot()
	if snap.SampleEvery != 2 {
		t.Errorf("sample 0.5 → every %d, want 2", snap.SampleEvery)
	}
	if snap.SlowThresholdMS != 50 {
		t.Errorf("slow threshold = %vms, want 50", snap.SlowThresholdMS)
	}
	if cfg.brokerOptions(nil).Trace == nil {
		t.Error("broker options did not receive the tracer")
	}

	// Each flag alone is sufficient.
	sampleOnly := parse(t, "-trace-sample", "1")
	if sampleOnly.tracer() == nil {
		t.Error("-trace-sample alone did not enable tracing")
	}
	slowOnly := parse(t, "-trace-slow", "1ms")
	if slowOnly.tracer() == nil {
		t.Error("-trace-slow alone did not enable tracing")
	}
}

// TestConfigLogFlags checks the -log-format / -log-level surface: defaults
// build a text logger at info, explicit flags are honored, and bad values
// error instead of silently logging wrong.
func TestConfigLogFlags(t *testing.T) {
	cfg := parse(t)
	if cfg.logFormat != "text" || cfg.logLevel != "info" {
		t.Errorf("log defaults = %q %q", cfg.logFormat, cfg.logLevel)
	}
	lg, err := cfg.logger(nil)
	if err != nil || lg == nil {
		t.Fatalf("default logger: %v", err)
	}
	if lg.Enabled(obs.LevelDebug) || !lg.Enabled(obs.LevelInfo) {
		t.Error("default logger is not at info level")
	}

	cfg = parse(t, "-log-format", "json", "-log-level", "debug")
	lg, err = cfg.logger(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !lg.Enabled(obs.LevelDebug) {
		t.Error("-log-level debug did not lower the threshold")
	}

	badLevel := parse(t, "-log-level", "verbose")
	if _, err := badLevel.logger(nil); err == nil {
		t.Error("bad -log-level did not error")
	}
	badFormat := parse(t, "-log-format", "xml")
	if _, err := badFormat.logger(nil); err == nil {
		t.Error("bad -log-format did not error")
	}
}

// TestConfigObsFlags pins the flight-recorder flag surface.
func TestConfigObsFlags(t *testing.T) {
	cfg := parse(t)
	if cfg.dumpDir != "" || cfg.matchSLO != 0 {
		t.Errorf("obs defaults = %q %v", cfg.dumpDir, cfg.matchSLO)
	}
	cfg = parse(t, "-dump-dir", "/tmp/bundles", "-match-slo", "25ms")
	if cfg.dumpDir != "/tmp/bundles" || cfg.matchSLO != 25*time.Millisecond {
		t.Errorf("obs flags = %q %v", cfg.dumpDir, cfg.matchSLO)
	}
}

// TestResolveDumpDir checks the dump-directory fallback chain: explicit
// flag beats the state dir, which beats the OS temp dir.
func TestResolveDumpDir(t *testing.T) {
	if got := resolveDumpDir("/explicit", "/state"); got != "/explicit" {
		t.Errorf("explicit flag → %q", got)
	}
	if got := resolveDumpDir("", "/state"); got != filepath.Join("/state", "dumps") {
		t.Errorf("state fallback → %q", got)
	}
	got := resolveDumpDir("", "")
	if got == "" || filepath.Base(got) != "mmserver-dumps" {
		t.Errorf("temp fallback → %q", got)
	}
}

// TestConfigDurabilityFlags pins the -fsync / -sync-interval translation
// the trace flags ride alongside.
func TestConfigDurabilityFlags(t *testing.T) {
	cfg := parse(t, "-fsync")
	if st := cfg.storeOptions(nil); !st.Durable {
		t.Error("-fsync did not set Durable")
	}
	cfg = parse(t, "-sync-interval", "2s")
	if st := cfg.storeOptions(nil); st.Durable || st.SyncInterval != 2*time.Second {
		t.Errorf("-sync-interval 2s → %+v", st)
	}
}
