package main

import (
	"flag"
	"testing"
	"time"
)

// parse runs the config's flag surface over args, as main does.
func parse(t *testing.T, args ...string) config {
	t.Helper()
	fs := flag.NewFlagSet("mmserver", flag.ContinueOnError)
	var cfg config
	cfg.register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestConfigDefaults checks the zero-flag configuration: no tracer (the
// publish hot path stays untraced), no durability, paper-default threshold.
func TestConfigDefaults(t *testing.T) {
	cfg := parse(t)
	if cfg.threshold != 0.25 || cfg.queue != 128 || cfg.retention != 4096 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.tracer() != nil {
		t.Error("tracing enabled without trace flags")
	}
	opts := cfg.brokerOptions(nil)
	if opts.Trace != nil {
		t.Error("broker options carry a tracer without trace flags")
	}
	st := cfg.storeOptions(nil)
	if st.Durable || st.SyncInterval != 0 {
		t.Errorf("store options = %+v", st)
	}
	if !cfg.prune || opts.NoPrune {
		t.Error("match pruning must default to on")
	}
}

// TestConfigPruneFlag pins the -prune=false escape hatch reaching the
// broker as NoPrune.
func TestConfigPruneFlag(t *testing.T) {
	cfg := parse(t, "-prune=false")
	if opts := cfg.brokerOptions(nil); !opts.NoPrune {
		t.Error("-prune=false did not set NoPrune")
	}
	cfg = parse(t, "-prune=true")
	if opts := cfg.brokerOptions(nil); opts.NoPrune {
		t.Error("-prune=true set NoPrune")
	}
}

// TestConfigTraceFlags checks -trace-sample / -trace-slow build an enabled
// tracer and wire it into the broker options.
func TestConfigTraceFlags(t *testing.T) {
	cfg := parse(t, "-trace-sample", "0.5", "-trace-slow", "50ms")
	tr := cfg.tracer()
	if tr == nil || !tr.Enabled() {
		t.Fatal("trace flags did not enable tracing")
	}
	snap := tr.Snapshot()
	if snap.SampleEvery != 2 {
		t.Errorf("sample 0.5 → every %d, want 2", snap.SampleEvery)
	}
	if snap.SlowThresholdMS != 50 {
		t.Errorf("slow threshold = %vms, want 50", snap.SlowThresholdMS)
	}
	if cfg.brokerOptions(nil).Trace == nil {
		t.Error("broker options did not receive the tracer")
	}

	// Each flag alone is sufficient.
	sampleOnly := parse(t, "-trace-sample", "1")
	if sampleOnly.tracer() == nil {
		t.Error("-trace-sample alone did not enable tracing")
	}
	slowOnly := parse(t, "-trace-slow", "1ms")
	if slowOnly.tracer() == nil {
		t.Error("-trace-slow alone did not enable tracing")
	}
}

// TestConfigDurabilityFlags pins the -fsync / -sync-interval translation
// the trace flags ride alongside.
func TestConfigDurabilityFlags(t *testing.T) {
	cfg := parse(t, "-fsync")
	if st := cfg.storeOptions(nil); !st.Durable {
		t.Error("-fsync did not set Durable")
	}
	cfg = parse(t, "-sync-interval", "2s")
	if st := cfg.storeOptions(nil); st.Durable || st.SyncInterval != 2*time.Second {
		t.Errorf("-sync-interval 2s → %+v", st)
	}
}
