// Command mmserver runs the push-based dissemination engine as a TCP
// daemon speaking the newline-delimited JSON protocol of internal/wire.
// Subscribers register adaptive profiles (MM by default), publishers push
// raw pages, and every relevance judgment reshapes the subscriber's profile
// online.
//
// With -state, profiles are durable: subscriptions and judgments are
// journaled to a sharded write-ahead log (-lanes), compacted by periodic
// incremental checkpoints (only lanes with at least -checkpoint-dirty
// changed profiles rewrite their segment), and restored on restart. With
// -max-resident-profiles, restored profiles boot as evicted stubs and
// hydrate from the store on first use, and the broker keeps at most that
// many profiles in the heap (DESIGN.md §14).
//
// Diagnostics (DESIGN.md §13): structured logs (-log-format, -log-level),
// liveness on /healthz and per-component readiness on /readyz (flipped to
// draining before the listener closes on SIGINT/SIGTERM), runtime
// telemetry as mm_runtime_* gauges, and a flight recorder that writes a
// diagnostic bundle under -dump-dir on panic, SIGQUIT, a sustained
// match-latency burn over -match-slo, or POST /debugz/dump.
//
// Attribution and windows (DESIGN.md §16): hot-key sketches answer "who
// is hot" per subscriber/term/lane on /topz (capacity per dimension via
// -top-capacity), and a ring of per-second metric snapshots serves
// windowed 1s/10s/60s rates on /tsz. The -match-slo trigger is a
// multi-window burn rate over that ring, and -evict-drop-rate uses the
// drops dimension to close push sessions whose windowed drop rate stays
// pathological for -evict-windows consecutive ticks.
//
// Usage:
//
//	mmserver [-addr :7070 | -addr unix:/path.sock] [-threshold 0.25]
//	         [-queue 128] [-retention 4096]
//	         [-state DIR] [-checkpoint 5m] [-checkpoint-dirty 1] [-lanes 4]
//	         [-max-resident-profiles 0] [-fsync] [-sync-interval 2s]
//	         [-pubsub-shards N] [-trace-sample 0.01] [-trace-slow 50ms]
//	         [-log-format text|json] [-log-level info] [-dump-dir DIR]
//	         [-match-slo 0] [-top-capacity 0] [-evict-drop-rate 0]
//	         [-evict-windows 3]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"mmprofile/internal/metrics"
	"mmprofile/internal/obs"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/store"
	"mmprofile/internal/topk"
	"mmprofile/internal/trace"
	"mmprofile/internal/wire"
)

// config is the flag surface that shapes the engine (as opposed to the
// flags main consumes directly, like -addr). Split from main so the
// flag → options translation is unit-testable.
type config struct {
	threshold   float64
	queue       int
	retention   int
	retainBody  bool
	fsync       bool
	syncEvery   time.Duration
	lanes       int
	ckptDirty   int
	maxResident int
	pubWorkers  int
	shards      int
	traceSample float64
	traceSlow   time.Duration
	prune       bool
	logFormat   string
	logLevel    string
	dumpDir     string
	matchSLO    time.Duration
	topCap      int
	evictRate   float64
	evictWins   int
}

func (c *config) register(fs *flag.FlagSet) {
	fs.Float64Var(&c.threshold, "threshold", 0.25, "minimum profile/document similarity for delivery")
	fs.IntVar(&c.queue, "queue", 128, "per-subscriber delivery buffer")
	fs.IntVar(&c.retention, "retention", 4096, "recent documents kept for feedback")
	fs.BoolVar(&c.retainBody, "retain-content", false, "keep raw page content for the retention window (enables fetch)")
	fs.BoolVar(&c.fsync, "fsync", false, "durable journal: feedback is acked only once fsynced (group-committed)")
	fs.DurationVar(&c.syncEvery, "sync-interval", 0, "without -fsync: background journal fsync interval (0 = OS-flushed only)")
	fs.IntVar(&c.lanes, "lanes", 0, "WAL lanes the journal is sharded into by user (0 = store default; pinned by the manifest on reopen)")
	fs.IntVar(&c.ckptDirty, "checkpoint-dirty", 1, "minimum changed profiles before a checkpoint rewrites a lane's segment")
	fs.IntVar(&c.maxResident, "max-resident-profiles", 0, "profiles kept in the heap; colder ones hydrate from -state on demand (0 = all resident; requires -state)")
	fs.IntVar(&c.pubWorkers, "publish-workers", 0, "goroutines for batch publishes (0 = GOMAXPROCS)")
	fs.IntVar(&c.shards, "pubsub-shards", 0, "suggested shard count for the broker's registry/docstore layers (0 = GOMAXPROCS, rounded to a power of two)")
	fs.Float64Var(&c.traceSample, "trace-sample", 0, "fraction of requests to capture as traces, 0..1 (0 = off; see /tracez)")
	fs.DurationVar(&c.traceSlow, "trace-slow", 0, "capture any request slower than this even when unsampled (0 = off)")
	fs.BoolVar(&c.prune, "prune", true, "threshold-aware match pruning (block-max skipping); -prune=false scans every posting")
	fs.StringVar(&c.logFormat, "log-format", "text", "log encoding: text or json")
	fs.StringVar(&c.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	fs.StringVar(&c.dumpDir, "dump-dir", "", "flight-recorder bundle directory (default <state>/dumps, or the OS temp dir without -state)")
	fs.DurationVar(&c.matchSLO, "match-slo", 0, "p99 match-latency SLO; sustained breach triggers a flight-recorder bundle (0 = off)")
	fs.IntVar(&c.topCap, "top-capacity", 0, "per-dimension hot-key sketch capacity for /topz (0 = default, negative = attribution off)")
	fs.Float64Var(&c.evictRate, "evict-drop-rate", 0, "drops/second per subscriber that, sustained, closes its push sessions (0 = off)")
	fs.IntVar(&c.evictWins, "evict-windows", 3, "consecutive 1s windows over -evict-drop-rate before a session is evicted")
}

// tracer builds the request tracer from the trace flags; nil when both are
// off, which keeps the publish hot path entirely untraced.
func (c *config) tracer() *trace.Tracer {
	if c.traceSample <= 0 && c.traceSlow <= 0 {
		return nil
	}
	return trace.New(trace.Options{SampleRate: c.traceSample, SlowThreshold: c.traceSlow})
}

// logger builds the process logger from the log flags, tapped into ring
// for the flight recorder.
func (c *config) logger(ring *obs.EventRing) (*obs.Logger, error) {
	level, err := obs.ParseLevel(c.logLevel)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(obs.LogOptions{Format: c.logFormat, Level: level, Ring: ring})
}

// resolveDumpDir picks the flight-recorder directory: the explicit flag,
// else a dumps/ subdirectory of the state dir, else a stable path under
// the OS temp dir (so a stateless server still records crashes somewhere
// findable).
func resolveDumpDir(flagVal, stateDir string) string {
	switch {
	case flagVal != "":
		return flagVal
	case stateDir != "":
		return filepath.Join(stateDir, "dumps")
	default:
		return filepath.Join(os.TempDir(), "mmserver-dumps")
	}
}

// brokerOptions translates the flags into the broker configuration.
func (c *config) brokerOptions(reg *metrics.Registry) pubsub.Options {
	return pubsub.Options{
		Threshold:      c.threshold,
		QueueSize:      c.queue,
		Retention:      c.retention,
		RetainContent:  c.retainBody,
		PublishWorkers: c.pubWorkers,
		Shards:         c.shards,
		Metrics:        reg,
		Trace:          c.tracer(),
		NoPrune:        !c.prune,
		TopCapacity:    c.topCap,
	}
}

// storeOptions translates the durability flags into the store configuration.
func (c *config) storeOptions(reg *metrics.Registry) store.Options {
	return store.Options{Durable: c.fsync, SyncInterval: c.syncEvery, Lanes: c.lanes, Metrics: reg}
}

// heartbeatEvery is how often the pipeline probe beats the health model;
// heartbeatMaxAge is the staleness bound /readyz degrades at. The gap
// tolerates scheduler hiccups without flapping.
// samplerEvery doubles as the window-ring tick: one snapshot per second,
// windowSamples of history, so /tsz can answer 1s/10s/60s spans with a
// minute of slack for series plots. sloShort/sloLong are the burn-rate
// windows the -match-slo trigger evaluates over that ring.
const (
	heartbeatEvery  = time.Second
	heartbeatMaxAge = 5 * time.Second
	samplerEvery    = time.Second
	windowSamples   = 120
	sloCooldown     = time.Minute
	sloShort        = 10 * time.Second
	sloLong         = 60 * time.Second
	sloObjective    = 0.99
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address (host:port, or unix:/path for a Unix domain socket)")
		httpAddr   = flag.String("http", "", "optional HTTP status address (e.g. :8080)")
		stateDir   = flag.String("state", "", "directory for durable profiles (empty = in-memory only)")
		checkpoint = flag.Duration("checkpoint", 5*time.Minute, "snapshot interval when -state is set")
	)
	var cfg config
	cfg.register(flag.CommandLine)
	flag.Parse()

	ring := obs.NewEventRing(0)
	logger, err := cfg.logger(ring)
	if err != nil {
		fatal(err)
	}

	// One registry for the whole process: the broker, the index, the store,
	// and the runtime sampler all record into it, and the HTTP endpoints
	// expose it. The mm_store_* family is registered up front so /metrics
	// carries every family even when the server runs without -state.
	reg := metrics.NewRegistry()
	store.RegisterMetrics(reg)

	// One attribution registry too: the store's lane sketches, the
	// broker's subscriber sketches, and the index's term sketch all land
	// in it, and /topz + the flight recorder read it.
	topReg := topk.NewRegistry()

	opts := cfg.brokerOptions(reg)
	opts.Log = logger
	opts.Top = topReg

	var st *store.Store
	if *stateDir != "" {
		sopts := cfg.storeOptions(reg)
		if cfg.topCap >= 0 {
			sopts.Top = topReg
		}
		st, err = store.Open(*stateDir, sopts)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		opts.Journal = st
		opts.Hydrator = st
		opts.MaxResident = cfg.maxResident
	} else if cfg.maxResident > 0 {
		fatal(errors.New("-max-resident-profiles requires -state (evicted profiles hydrate from the store)"))
	}

	broker := pubsub.New(opts)

	// Readiness model: the server flips from starting to ready once the
	// listener is bound; the store reports its sticky failure state; the
	// index and publish pipeline prove liveness via heartbeats (a wedged
	// layer blocks the probe, the beat goes stale, /readyz degrades — the
	// handler itself never touches broker locks).
	health := obs.NewHealth()
	health.Set("server", obs.StatusNotReady, "starting")
	if st != nil {
		health.RegisterCheck("store_wal", st.Health)
	} else {
		health.Set("store_wal", obs.StatusReady, "in-memory (no -state)")
	}
	health.RegisterHeartbeat("index", heartbeatMaxAge)
	health.RegisterHeartbeat("publish_loop", heartbeatMaxAge)
	stopBeats := make(chan struct{})
	go func() {
		t := time.NewTicker(heartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-stopBeats:
				return
			case <-t.C:
				broker.PingPipeline()
				health.Beat("publish_loop")
				broker.IndexStats()
				health.Beat("index")
			}
		}
	}()

	// Window ring: one row of counter values + histogram buckets per
	// sampler tick. Every attribution dimension's total is mirrored in as
	// "top:<dimension>" so /topz can quote windowed rates next to the
	// cumulative sketch counts (the naming contract wire.StatusOptions
	// documents).
	win := obs.NewWindow(windowSamples)
	for _, name := range []string{
		"mm_pubsub_published_total",
		"mm_pubsub_deliveries_total",
		"mm_pubsub_dropped_total",
		"mm_pubsub_feedbacks_total",
		"mm_pubsub_hydrations_total",
	} {
		c := reg.Counter(name, "")
		win.RegisterCounter(name, func() float64 { return float64(c.Value()) })
	}
	matchHist := reg.Histogram("mm_pubsub_match_seconds",
		"Latency of matching one published document against all subscriber profiles.")
	win.RegisterHistogram("mm_pubsub_match_seconds", matchHist)
	win.RegisterHistogram("mm_pubsub_publish_seconds", reg.Histogram("mm_pubsub_publish_seconds", ""))
	for _, d := range topReg.Dimensions() {
		win.RegisterCounter("top:"+d.Name(), d.Total)
	}

	// Flight recorder: panic (via the deferred RecoverRepanic here and in
	// every wire connection handler), SIGQUIT, the match-SLO burn trigger
	// below, and POST /debugz/dump all write bundles to dumpDir.
	dumpDir := resolveDumpDir(cfg.dumpDir, *stateDir)
	src := obs.BundleSources{Metrics: reg, Tracer: broker.Tracer(), Health: health, Top: topReg, Window: win}
	if st != nil {
		src.WALInfo = func() (any, error) { return st.WALInfo() }
	}
	rec := obs.NewRecorder(dumpDir, ring, src)
	defer rec.RecoverRepanic()

	srv := wire.NewServerLogger(broker, logger)
	srv.SetRecorder(rec)

	// SLO trigger: a multi-window burn rate over the ring replaces the old
	// single-sample p99 watermark — the 10s window proves the breach is
	// current, the 60s window proves it is sustained, and a tick with no
	// fresh match samples cannot breach (ShortCount is zero).
	sloRule := obs.BurnRule{
		Hist:      "mm_pubsub_match_seconds",
		Limit:     cfg.matchSLO.Seconds(),
		Objective: sloObjective,
		Short:     sloShort,
		Long:      sloLong,
		Factor:    1,
	}
	var evictor *dropEvictor
	if cfg.evictRate > 0 {
		evictor = newDropEvictor(cfg.evictRate, cfg.evictWins, srv.KickSession)
	}
	onTick := func(obs.RuntimeStats) {
		now := time.Now()
		win.Tick(now)
		if evictor != nil {
			if dim, ok := topReg.Find("subscriber_drops"); ok {
				evictor.tick(now, dim)
			}
		}
		if cfg.matchSLO <= 0 {
			return
		}
		burn := win.Burn(sloRule)
		if !burn.Breached {
			return
		}
		path, skipped, err := rec.DumpCooldown("match_slo", sloCooldown)
		switch {
		case err != nil:
			logger.Error("mmserver: match-slo dump failed", slog.String("err", err.Error()))
		case !skipped:
			logger.Warn("mmserver: match SLO burn-rate breach, bundle written",
				slog.Float64("short_burn", burn.ShortBurn),
				slog.Float64("long_burn", burn.LongBurn),
				slog.Float64("slo_seconds", cfg.matchSLO.Seconds()),
				slog.String("bundle", path))
		}
	}
	sampler := obs.StartRuntimeSampler(reg, samplerEvery, onTick)
	defer sampler.Stop()
	if tr := broker.Tracer(); tr != nil {
		reg.GaugeFunc("mm_trace_sampled",
			"Root spans captured by head sampling or remote join.",
			func() float64 { s, _ := tr.Counts(); return float64(s) })
		reg.GaugeFunc("mm_trace_slow_captured",
			"Traces retained for meeting the slow threshold.",
			func() float64 { _, s := tr.Counts(); return float64(s) })
	}

	if st != nil {
		if err := restore(st, broker, srv, logger, cfg.maxResident > 0); err != nil {
			fatal(err)
		}
	}

	lis, err := listen(*addr)
	if err != nil {
		fatal(err)
	}
	lay := broker.Layout()
	logger.Info("mmserver: listening",
		slog.String("addr", lis.Addr().String()),
		slog.Float64("threshold", cfg.threshold),
		slog.String("state", *stateDir),
		slog.String("dump_dir", dumpDir),
		slog.Int("registry_shards", lay.RegistryShards),
		slog.Int("doc_shards", lay.DocShards),
		slog.Int("stats_stripes", lay.StatsStripes),
		slog.Int("index_shards", lay.IndexShards))
	if broker.Tracer() != nil {
		logger.Info("mmserver: tracing on — /tracez on the -http listener",
			slog.Float64("sample", cfg.traceSample),
			slog.String("slow", cfg.traceSlow.String()))
	}
	health.Set("server", obs.StatusReady, "")

	if *httpAddr != "" {
		httpLis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		logger.Info("mmserver: status pages", slog.String("url", "http://"+httpLis.Addr().String()+"/"))
		handler := wire.NewStatusHandlerOpts(broker, wire.StatusOptions{Health: health, Recorder: rec, Top: topReg, Window: win})
		go func() {
			if err := http.Serve(httpLis, handler); err != nil {
				logger.Warn("mmserver: http", slog.String("err", err.Error()))
			}
		}()
	}

	stopCheckpoints := make(chan struct{})
	if st != nil && *checkpoint > 0 {
		go func() {
			t := time.NewTicker(*checkpoint)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := runCheckpoint(st, broker, cfg.ckptDirty, logger); err != nil {
						logger.Error("mmserver: checkpoint", slog.String("err", err.Error()))
					}
				case <-stopCheckpoints:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	go func() {
		for s := range sig {
			if s == syscall.SIGQUIT {
				// Non-destructive: dump and keep serving, like the
				// runtime's own SIGQUIT but without dying.
				path, err := rec.Dump("sigquit")
				if err != nil {
					logger.Error("mmserver: sigquit dump failed", slog.String("err", err.Error()))
				} else {
					logger.Info("mmserver: sigquit bundle written", slog.String("bundle", path))
				}
				continue
			}
			// Graceful drain. Readiness flips FIRST: load balancers
			// watching /readyz stop routing while the flush below runs
			// and in-flight requests finish. /healthz stays green — the
			// process is alive and must not be restarted mid-drain.
			health.StartDrain()
			logger.Info("mmserver: shutting down", slog.String("signal", s.String()))
			close(stopCheckpoints)
			close(stopBeats)
			if st != nil {
				// Barrier first: anything journaled but not yet fsynced
				// (the -sync-interval window) becomes durable even if the
				// final checkpoint below fails.
				if err := broker.SyncJournal(); err != nil {
					logger.Error("mmserver: journal sync", slog.String("err", err.Error()))
				}
				// Compact every dirty lane regardless of -checkpoint-dirty:
				// a clean shutdown should leave the shortest possible replay.
				if err := runCheckpoint(st, broker, 1, logger); err != nil {
					logger.Error("mmserver: final checkpoint", slog.String("err", err.Error()))
				}
			}
			srv.Close()
			return
		}
	}()

	if err := srv.Serve(lis); err != nil && !errors.Is(err, net.ErrClosed) {
		logger.Error("mmserver: serve", slog.String("err", err.Error()))
	}
}

// listen binds the wire listener: "unix:<path>" binds a Unix domain
// socket — removing a stale socket file left by a previous run first —
// and anything else is a TCP address. Unix sockets skip the ephemeral-port
// budget entirely, which is what the c10k-and-up session load runs need.
func listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// restore rebuilds subscriptions from the lane segments + journal and
// registers them with both broker and server. Registration never
// re-journals (SubscribeRestored): the store already holds each profile.
// Eagerly, every learner is replayed into the heap at boot; lazily (with
// -max-resident-profiles), each user becomes an evicted stub that
// hydrates from the store on first use — boot cost is O(subscribers), not
// O(journal events). Either way a boot checkpoint then compacts every
// dirty lane, so replays (the next boot's, and each lazy hydration's)
// start from segments instead of long logs.
func restore(st *store.Store, broker *pubsub.Broker, srv *wire.Server, logger *obs.Logger, lazy bool) error {
	profiles, events, err := st.Load()
	if err != nil {
		return err
	}
	adopt := func(user string, sub *pubsub.Subscription, err error) error {
		if err != nil {
			return fmt.Errorf("restoring %q: %w", user, err)
		}
		srv.Adopt(user, sub)
		return nil
	}
	var users []string
	if lazy {
		names := store.RestoredNames(profiles, events)
		users = make([]string, 0, len(names))
		for u := range names {
			users = append(users, u)
		}
		sort.Strings(users)
		for _, user := range users {
			sub, err := broker.SubscribeRestored(user, names[user], nil)
			if err := adopt(user, sub, err); err != nil {
				return err
			}
		}
	} else {
		learners, err := store.Restore(profiles, events)
		if err != nil {
			return err
		}
		users = make([]string, 0, len(learners))
		for u := range learners {
			users = append(users, u)
		}
		sort.Strings(users)
		for _, user := range users {
			sub, err := broker.SubscribeRestored(user, learners[user].Name(), learners[user])
			if err := adopt(user, sub, err); err != nil {
				return err
			}
		}
	}
	if len(users) > 0 {
		logger.Info("mmserver: restored subscribers",
			slog.Int("subscribers", len(users)),
			slog.Bool("lazy", lazy),
			slog.Int("snapshot_records", len(profiles)),
			slog.Int("journal_events", len(events)))
	}
	_, err = st.Checkpoint(1)
	return err
}

// checkpoint runs one incremental checkpoint: the journal's durability
// barrier first (so the relaxed -sync-interval window never spans a
// checkpoint), then a segment rewrite of every lane with at least
// minDirty changed profiles.
func runCheckpoint(st *store.Store, broker *pubsub.Broker, minDirty int, logger *obs.Logger) error {
	if err := broker.SyncJournal(); err != nil {
		return err
	}
	stats, err := st.Checkpoint(minDirty)
	if err != nil {
		return err
	}
	logger.Debug("mmserver: checkpoint",
		slog.Int("lanes", stats.Lanes),
		slog.Int("rewritten", stats.Rewritten),
		slog.Int("skipped", stats.Skipped),
		slog.Int("clean", stats.Clean),
		slog.Int("profiles", stats.Profiles),
		slog.Int64("bytes", stats.Bytes))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmserver:", err)
	os.Exit(1)
}
