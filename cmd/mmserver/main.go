// Command mmserver runs the push-based dissemination engine as a TCP
// daemon speaking the newline-delimited JSON protocol of internal/wire.
// Subscribers register adaptive profiles (MM by default), publishers push
// raw pages, and every relevance judgment reshapes the subscriber's profile
// online.
//
// With -state, profiles are durable: subscriptions and judgments are
// journaled to a write-ahead log, checkpointed periodically, and restored
// on restart.
//
// Usage:
//
//	mmserver [-addr :7070] [-threshold 0.25] [-queue 128] [-retention 4096]
//	         [-state DIR] [-checkpoint 5m] [-fsync] [-sync-interval 2s]
//	         [-pubsub-shards N]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"mmprofile/internal/metrics"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/store"
	"mmprofile/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		threshold  = flag.Float64("threshold", 0.25, "minimum profile/document similarity for delivery")
		queue      = flag.Int("queue", 128, "per-subscriber delivery buffer")
		retention  = flag.Int("retention", 4096, "recent documents kept for feedback")
		retainBody = flag.Bool("retain-content", false, "keep raw page content for the retention window (enables fetch)")
		httpAddr   = flag.String("http", "", "optional HTTP status address (e.g. :8080)")
		stateDir   = flag.String("state", "", "directory for durable profiles (empty = in-memory only)")
		checkpoint = flag.Duration("checkpoint", 5*time.Minute, "snapshot interval when -state is set")
		fsync      = flag.Bool("fsync", false, "durable journal: feedback is acked only once fsynced (group-committed)")
		syncEvery  = flag.Duration("sync-interval", 0, "without -fsync: background journal fsync interval (0 = OS-flushed only)")
		pubWorkers = flag.Int("publish-workers", 0, "goroutines for batch publishes (0 = GOMAXPROCS)")
		shards     = flag.Int("pubsub-shards", 0, "suggested shard count for the broker's registry/docstore layers (0 = GOMAXPROCS, rounded to a power of two)")
	)
	flag.Parse()

	// One registry for the whole process: the broker, the index, and the
	// store all record into it, and the HTTP endpoints expose it. The
	// mm_store_* family is registered up front so /metrics carries every
	// family even when the server runs without -state.
	reg := metrics.NewRegistry()
	store.RegisterMetrics(reg)

	opts := pubsub.Options{
		Threshold:      *threshold,
		QueueSize:      *queue,
		Retention:      *retention,
		RetainContent:  *retainBody,
		PublishWorkers: *pubWorkers,
		Shards:         *shards,
		Metrics:        reg,
	}

	var st *store.Store
	if *stateDir != "" {
		var err error
		st, err = store.Open(*stateDir, store.Options{Durable: *fsync, SyncInterval: *syncEvery, Metrics: reg})
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		opts.Journal = st
	}

	broker := pubsub.New(opts)
	srv := wire.NewServer(broker, log.Printf)

	if st != nil {
		if err := restore(st, broker, srv); err != nil {
			fatal(err)
		}
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	lay := broker.Layout()
	log.Printf("mmserver: listening on %s (threshold %.2f, state %q, shards registry=%d docs=%d stats=%d index=%d)",
		lis.Addr(), *threshold, *stateDir, lay.RegistryShards, lay.DocShards, lay.StatsStripes, lay.IndexShards)

	if *httpAddr != "" {
		httpLis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		log.Printf("mmserver: status pages on http://%s/", httpLis.Addr())
		go func() {
			if err := http.Serve(httpLis, wire.NewStatusHandler(broker)); err != nil {
				log.Printf("mmserver: http: %v", err)
			}
		}()
	}

	stopCheckpoints := make(chan struct{})
	if st != nil && *checkpoint > 0 {
		go func() {
			t := time.NewTicker(*checkpoint)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := snapshot(st, broker); err != nil {
						log.Printf("mmserver: checkpoint: %v", err)
					}
				case <-stopCheckpoints:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("mmserver: shutting down")
		close(stopCheckpoints)
		if st != nil {
			// Barrier first: anything journaled but not yet fsynced (the
			// -sync-interval window) becomes durable even if the final
			// checkpoint below fails.
			if err := broker.SyncJournal(); err != nil {
				log.Printf("mmserver: journal sync: %v", err)
			}
			if err := snapshot(st, broker); err != nil {
				log.Printf("mmserver: final checkpoint: %v", err)
			}
		}
		srv.Close()
	}()

	if err := srv.Serve(lis); err != nil && err != net.ErrClosed {
		log.Printf("mmserver: serve: %v", err)
	}
}

// restore rebuilds subscriptions from the snapshot + journal, registers
// them with both broker and server, and takes an immediate checkpoint so
// the journal restarts empty (Subscribe re-journals each restored profile).
func restore(st *store.Store, broker *pubsub.Broker, srv *wire.Server) error {
	profiles, events, err := st.Load()
	if err != nil {
		return err
	}
	learners, err := store.Restore(profiles, events)
	if err != nil {
		return err
	}
	users := make([]string, 0, len(learners))
	for u := range learners {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, user := range users {
		sub, err := broker.Subscribe(user, learners[user])
		if err != nil {
			return fmt.Errorf("restoring %q: %w", user, err)
		}
		srv.Adopt(user, sub)
	}
	if len(users) > 0 {
		log.Printf("mmserver: restored %d subscriber(s) from %d snapshot record(s) + %d journal event(s)",
			len(users), len(profiles), len(events))
	}
	return snapshot(st, broker)
}

func snapshot(st *store.Store, broker *pubsub.Broker) error {
	snaps, err := broker.ExportProfiles()
	if err != nil {
		return err
	}
	records := make([]store.ProfileRecord, len(snaps))
	for i, s := range snaps {
		records[i] = store.ProfileRecord{User: s.User, Learner: s.Learner, Data: s.Data}
	}
	return st.Snapshot(records)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmserver:", err)
	os.Exit(1)
}
