// Command mmserver runs the push-based dissemination engine as a TCP
// daemon speaking the newline-delimited JSON protocol of internal/wire.
// Subscribers register adaptive profiles (MM by default), publishers push
// raw pages, and every relevance judgment reshapes the subscriber's profile
// online.
//
// With -state, profiles are durable: subscriptions and judgments are
// journaled to a write-ahead log, checkpointed periodically, and restored
// on restart.
//
// Usage:
//
//	mmserver [-addr :7070] [-threshold 0.25] [-queue 128] [-retention 4096]
//	         [-state DIR] [-checkpoint 5m] [-fsync] [-sync-interval 2s]
//	         [-pubsub-shards N] [-trace-sample 0.01] [-trace-slow 50ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"mmprofile/internal/metrics"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/store"
	"mmprofile/internal/trace"
	"mmprofile/internal/wire"
)

// config is the flag surface that shapes the engine (as opposed to the
// flags main consumes directly, like -addr). Split from main so the
// flag → options translation is unit-testable.
type config struct {
	threshold   float64
	queue       int
	retention   int
	retainBody  bool
	fsync       bool
	syncEvery   time.Duration
	pubWorkers  int
	shards      int
	traceSample float64
	traceSlow   time.Duration
	prune       bool
}

func (c *config) register(fs *flag.FlagSet) {
	fs.Float64Var(&c.threshold, "threshold", 0.25, "minimum profile/document similarity for delivery")
	fs.IntVar(&c.queue, "queue", 128, "per-subscriber delivery buffer")
	fs.IntVar(&c.retention, "retention", 4096, "recent documents kept for feedback")
	fs.BoolVar(&c.retainBody, "retain-content", false, "keep raw page content for the retention window (enables fetch)")
	fs.BoolVar(&c.fsync, "fsync", false, "durable journal: feedback is acked only once fsynced (group-committed)")
	fs.DurationVar(&c.syncEvery, "sync-interval", 0, "without -fsync: background journal fsync interval (0 = OS-flushed only)")
	fs.IntVar(&c.pubWorkers, "publish-workers", 0, "goroutines for batch publishes (0 = GOMAXPROCS)")
	fs.IntVar(&c.shards, "pubsub-shards", 0, "suggested shard count for the broker's registry/docstore layers (0 = GOMAXPROCS, rounded to a power of two)")
	fs.Float64Var(&c.traceSample, "trace-sample", 0, "fraction of requests to capture as traces, 0..1 (0 = off; see /tracez)")
	fs.DurationVar(&c.traceSlow, "trace-slow", 0, "capture any request slower than this even when unsampled (0 = off)")
	fs.BoolVar(&c.prune, "prune", true, "threshold-aware match pruning (block-max skipping); -prune=false scans every posting")
}

// tracer builds the request tracer from the trace flags; nil when both are
// off, which keeps the publish hot path entirely untraced.
func (c *config) tracer() *trace.Tracer {
	if c.traceSample <= 0 && c.traceSlow <= 0 {
		return nil
	}
	return trace.New(trace.Options{SampleRate: c.traceSample, SlowThreshold: c.traceSlow})
}

// brokerOptions translates the flags into the broker configuration.
func (c *config) brokerOptions(reg *metrics.Registry) pubsub.Options {
	return pubsub.Options{
		Threshold:      c.threshold,
		QueueSize:      c.queue,
		Retention:      c.retention,
		RetainContent:  c.retainBody,
		PublishWorkers: c.pubWorkers,
		Shards:         c.shards,
		Metrics:        reg,
		Trace:          c.tracer(),
		NoPrune:        !c.prune,
	}
}

// storeOptions translates the durability flags into the store configuration.
func (c *config) storeOptions(reg *metrics.Registry) store.Options {
	return store.Options{Durable: c.fsync, SyncInterval: c.syncEvery, Metrics: reg}
}

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		httpAddr   = flag.String("http", "", "optional HTTP status address (e.g. :8080)")
		stateDir   = flag.String("state", "", "directory for durable profiles (empty = in-memory only)")
		checkpoint = flag.Duration("checkpoint", 5*time.Minute, "snapshot interval when -state is set")
	)
	var cfg config
	cfg.register(flag.CommandLine)
	flag.Parse()

	// One registry for the whole process: the broker, the index, and the
	// store all record into it, and the HTTP endpoints expose it. The
	// mm_store_* family is registered up front so /metrics carries every
	// family even when the server runs without -state.
	reg := metrics.NewRegistry()
	store.RegisterMetrics(reg)

	opts := cfg.brokerOptions(reg)

	var st *store.Store
	if *stateDir != "" {
		var err error
		st, err = store.Open(*stateDir, cfg.storeOptions(reg))
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		opts.Journal = st
	}

	broker := pubsub.New(opts)
	srv := wire.NewServer(broker, log.Printf)

	if st != nil {
		if err := restore(st, broker, srv); err != nil {
			fatal(err)
		}
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	lay := broker.Layout()
	log.Printf("mmserver: listening on %s (threshold %.2f, state %q, shards registry=%d docs=%d stats=%d index=%d)",
		lis.Addr(), cfg.threshold, *stateDir, lay.RegistryShards, lay.DocShards, lay.StatsStripes, lay.IndexShards)
	if broker.Tracer() != nil {
		log.Printf("mmserver: tracing on (sample %.3g, slow %s) — /tracez on the -http listener",
			cfg.traceSample, cfg.traceSlow)
	}

	if *httpAddr != "" {
		httpLis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		log.Printf("mmserver: status pages on http://%s/", httpLis.Addr())
		go func() {
			if err := http.Serve(httpLis, wire.NewStatusHandler(broker)); err != nil {
				log.Printf("mmserver: http: %v", err)
			}
		}()
	}

	stopCheckpoints := make(chan struct{})
	if st != nil && *checkpoint > 0 {
		go func() {
			t := time.NewTicker(*checkpoint)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := snapshot(st, broker); err != nil {
						log.Printf("mmserver: checkpoint: %v", err)
					}
				case <-stopCheckpoints:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("mmserver: shutting down")
		close(stopCheckpoints)
		if st != nil {
			// Barrier first: anything journaled but not yet fsynced (the
			// -sync-interval window) becomes durable even if the final
			// checkpoint below fails.
			if err := broker.SyncJournal(); err != nil {
				log.Printf("mmserver: journal sync: %v", err)
			}
			if err := snapshot(st, broker); err != nil {
				log.Printf("mmserver: final checkpoint: %v", err)
			}
		}
		srv.Close()
	}()

	if err := srv.Serve(lis); err != nil && err != net.ErrClosed {
		log.Printf("mmserver: serve: %v", err)
	}
}

// restore rebuilds subscriptions from the snapshot + journal, registers
// them with both broker and server, and takes an immediate checkpoint so
// the journal restarts empty (Subscribe re-journals each restored profile).
func restore(st *store.Store, broker *pubsub.Broker, srv *wire.Server) error {
	profiles, events, err := st.Load()
	if err != nil {
		return err
	}
	learners, err := store.Restore(profiles, events)
	if err != nil {
		return err
	}
	users := make([]string, 0, len(learners))
	for u := range learners {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, user := range users {
		sub, err := broker.Subscribe(user, learners[user])
		if err != nil {
			return fmt.Errorf("restoring %q: %w", user, err)
		}
		srv.Adopt(user, sub)
	}
	if len(users) > 0 {
		log.Printf("mmserver: restored %d subscriber(s) from %d snapshot record(s) + %d journal event(s)",
			len(users), len(profiles), len(events))
	}
	return snapshot(st, broker)
}

func snapshot(st *store.Store, broker *pubsub.Broker) error {
	snaps, err := broker.ExportProfiles()
	if err != nil {
		return err
	}
	records := make([]store.ProfileRecord, len(snaps))
	for i, s := range snaps {
		records[i] = store.ProfileRecord{User: s.User, Learner: s.Learner, Data: s.Data}
	}
	return st.Snapshot(records)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmserver:", err)
	os.Exit(1)
}
