package main

import (
	"strings"
	"testing"
	"time"

	"mmprofile/internal/topk"
)

// TestDropEvictor drives the -evict-drop-rate policy over a real sketch:
// a subscriber must breach the rate limit for the full streak of
// consecutive windows before its sessions are kicked, a slow dropper is
// never kicked, and a breach that recovers resets the streak.
func TestDropEvictor(t *testing.T) {
	sk := topk.New[string]("subscriber_drops", "", 16, 1, topk.HashString, topk.FormatString)
	var kicked []string
	e := newDropEvictor(5, 3, func(user, reason string) int {
		kicked = append(kicked, user)
		if !strings.Contains(reason, "limit 5.0/s") {
			t.Errorf("reason missing the limit: %q", reason)
		}
		return 1
	})

	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	step := func(aliceDrops, bobDrops int) {
		for i := 0; i < aliceDrops; i++ {
			sk.Offer("alice", 1)
		}
		for i := 0; i < bobDrops; i++ {
			sk.Offer("bob", 1)
		}
		e.tick(now, sk)
		now = now.Add(time.Second)
	}

	// Tick 1 baselines; ticks 2-3 breach but the streak (2) is short of 3.
	step(10, 1)
	step(10, 1)
	step(10, 1)
	if len(kicked) != 0 {
		t.Fatalf("kicked %v before the streak completed", kicked)
	}
	// Tick 4 completes the streak.
	step(10, 1)
	if len(kicked) != 1 || kicked[0] != "alice" {
		t.Fatalf("kicked = %v, want [alice]", kicked)
	}
	// The kick reset alice's streak: two more breaching ticks stay quiet...
	step(10, 1)
	step(10, 1)
	// ...then a quiet window resets again, so the next two breaches don't
	// reach the threshold either.
	step(0, 0)
	step(10, 1)
	step(10, 1)
	if len(kicked) != 1 {
		t.Fatalf("kicked = %v after recovery, want just the first", kicked)
	}
	// Bob never breached 5/s.
	for _, u := range kicked {
		if u == "bob" {
			t.Fatal("slow dropper was kicked")
		}
	}
}

// TestConfigAttributionFlags pins the new flag surface: sketch capacity
// reaches the broker options and the eviction policy defaults to off.
func TestConfigAttributionFlags(t *testing.T) {
	cfg := parse(t)
	if cfg.topCap != 0 || cfg.evictRate != 0 || cfg.evictWins != 3 {
		t.Errorf("attribution defaults = %d %v %d", cfg.topCap, cfg.evictRate, cfg.evictWins)
	}
	if opts := cfg.brokerOptions(nil); opts.TopCapacity != 0 {
		t.Errorf("default TopCapacity = %d", opts.TopCapacity)
	}
	cfg = parse(t, "-top-capacity", "-1", "-evict-drop-rate", "12.5", "-evict-windows", "5")
	if opts := cfg.brokerOptions(nil); opts.TopCapacity != -1 {
		t.Errorf("-top-capacity -1 → %d", opts.TopCapacity)
	}
	if cfg.evictRate != 12.5 || cfg.evictWins != 5 {
		t.Errorf("eviction flags = %v %d", cfg.evictRate, cfg.evictWins)
	}
}
