// Command mmeval works with TREC exchange formats (the evaluation
// methodology of the paper's Section 4.3 is the TREC routing track):
//
// Evaluate an existing run against judgments (any ranking, including ones
// produced by other systems):
//
//	mmeval -run run.txt -qrels qrels.txt
//
// Generate runs + qrels from this repository's learners on the synthetic
// collection (one topic per seeded user workload), then evaluate them:
//
//	mmeval -generate out/ [-learners MM,RG10,RI] [-topics 8] [-seed 1]
//
// The generated files are standard, so trec_eval can independently verify
// every number this repository reports.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mmprofile/internal/bench"
	"mmprofile/internal/corpus"
	"mmprofile/internal/eval"
	"mmprofile/internal/filter"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
	"mmprofile/internal/trec"

	_ "mmprofile/internal/core"    // register learners
	_ "mmprofile/internal/rocchio" // register learners
)

func main() {
	var (
		runPath   = flag.String("run", "", "run file to evaluate")
		qrelsPath = flag.String("qrels", "", "qrels file")
		generate  = flag.String("generate", "", "directory to generate runs + qrels into")
		learners  = flag.String("learners", "MM,RG10,RI", "learners for -generate")
		topics    = flag.Int("topics", 8, "topics (seeded user workloads) for -generate")
		seed      = flag.Int64("seed", 1, "base seed for -generate")
	)
	flag.Parse()

	switch {
	case *generate != "":
		if err := generateRuns(*generate, strings.Split(*learners, ","), *topics, *seed); err != nil {
			fail(err)
		}
	case *runPath != "" && *qrelsPath != "":
		if err := evaluateFiles(*runPath, *qrelsPath); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "mmeval: need -run FILE -qrels FILE, or -generate DIR")
		os.Exit(2)
	}
}

func evaluateFiles(runPath, qrelsPath string) error {
	rf, err := os.Open(runPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	run, err := trec.ReadRun(rf)
	if err != nil {
		return err
	}
	qf, err := os.Open(qrelsPath)
	if err != nil {
		return err
	}
	defer qf.Close()
	qrels, err := trec.ReadQrels(qf)
	if err != nil {
		return err
	}
	results, mean := trec.Evaluate(run, qrels)
	if len(results) == 0 {
		return fmt.Errorf("no judged topics in common between run and qrels")
	}
	fmt.Printf("%10s %8s %8s %8s %8s\n", "topic", "niap", "P@10", "P@30", "R-prec")
	for _, r := range results {
		fmt.Printf("%10s %8.4f %8.4f %8.4f %8.4f\n", r.Topic,
			r.Metrics.NIAP, r.Metrics.PrecisionAt[10], r.Metrics.PrecisionAt[30], r.Metrics.RPrecision)
	}
	fmt.Printf("%10s %8.4f %8.4f %8.4f %8.4f   (%d topics)\n", "mean",
		mean.NIAP, mean.PrecisionAt[10], mean.PrecisionAt[30], mean.RPrecision, len(results))
	return nil
}

func generateRuns(dir string, learners []string, topics int, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := bench.DefaultConfig()
	cfg.BaseSeed = seed
	ds := corpus.Generate(cfg.Corpus).Vectorize(text.NewPipeline())

	qrels := trec.Qrels{}
	runs := map[string]trec.Run{}
	for _, name := range learners {
		runs[strings.TrimSpace(name)] = trec.Run{}
	}

	for topic := 0; topic < topics; topic++ {
		topicID := fmt.Sprintf("T%02d", topic)
		rng := rand.New(rand.NewSource(seed + int64(topic)*7919))
		train, test := ds.Split(rng.Int63(), cfg.TrainDocs)
		u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1+topic%3)...)
		stream := sim.Stream(rng, train, len(train))

		qrels[topicID] = map[string]bool{}
		for _, d := range test {
			qrels[topicID][docNo(d)] = u.Relevant(d.Cat)
		}

		for name, run := range runs {
			l, err := filter.New(name)
			if err != nil {
				return err
			}
			eval.Run(l, u, stream, test) // trains and freezes
			type scored struct {
				doc   corpus.Document
				score float64
			}
			rows := make([]scored, len(test))
			for i, d := range test {
				rows[i] = scored{doc: d, score: l.Score(d.Vec)}
			}
			sort.Slice(rows, func(i, j int) bool {
				if rows[i].score != rows[j].score {
					return rows[i].score > rows[j].score
				}
				return rows[i].doc.ID < rows[j].doc.ID
			})
			for rank, r := range rows {
				run[topicID] = append(run[topicID], trec.RunEntry{
					Topic: topicID,
					DocNo: docNo(r.doc),
					Rank:  rank + 1,
					Score: r.score,
					Tag:   name,
				})
			}
		}
	}

	qf, err := os.Create(filepath.Join(dir, "qrels.txt"))
	if err != nil {
		return err
	}
	if err := trec.WriteQrels(qf, qrels); err != nil {
		qf.Close()
		return err
	}
	qf.Close()

	for name, run := range runs {
		rf, err := os.Create(filepath.Join(dir, "run-"+name+".txt"))
		if err != nil {
			return err
		}
		if err := trec.WriteRun(rf, run); err != nil {
			rf.Close()
			return err
		}
		rf.Close()
		_, mean := trec.Evaluate(run, qrels)
		fmt.Printf("%-6s mean niap %.4f  P@10 %.4f  R-prec %.4f  (%d topics) -> %s\n",
			name, mean.NIAP, mean.PrecisionAt[10], mean.RPrecision, topics,
			filepath.Join(dir, "run-"+name+".txt"))
	}
	fmt.Printf("qrels -> %s\n", filepath.Join(dir, "qrels.txt"))
	return nil
}

func docNo(d corpus.Document) string { return fmt.Sprintf("D%04d", d.ID) }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmeval:", err)
	os.Exit(1)
}
