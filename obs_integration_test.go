// Diagnostics integration test: the obs stack assembled the way mmserver
// assembles it — health model, flight recorder, status handler, wire
// server — driven through a full lifecycle: starting → ready → a bundle
// dumped over HTTP → draining. Pins the liveness/readiness split end to
// end: /healthz stays green through the drain while /readyz flips to 503.
package mmprofile_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/obs"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/store"
	"mmprofile/internal/trace"
	"mmprofile/internal/wire"
)

// readyzSnap fetches /readyz without erroring on 503 (that status IS the
// signal) and decodes the snapshot.
func readyzSnap(t *testing.T, base string) (int, obs.HealthSnapshot) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.HealthSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("readyz body %q: %v", raw, err)
	}
	return resp.StatusCode, snap
}

func TestObsLifecycle(t *testing.T) {
	stateDir := t.TempDir()
	dumpDir := t.TempDir()

	reg := metrics.NewRegistry()
	st, err := store.Open(stateDir, store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ring := obs.NewEventRing(64)
	logger, err := obs.NewLogger(obs.LogOptions{Format: "json", Output: io.Discard, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{SampleRate: 1})
	broker := pubsub.New(pubsub.Options{
		Threshold: 0.2, Retention: 1 << 10, Metrics: reg,
		Trace: tr, Log: logger, Journal: st,
	})

	// Health model wired as mmserver wires it: push "server", pull
	// "store_wal" from the store's sticky state.
	health := obs.NewHealth()
	health.Set("server", obs.StatusNotReady, "starting")
	health.RegisterCheck("store_wal", st.Health)

	rec := obs.NewRecorder(dumpDir, ring, obs.BundleSources{
		Metrics: reg,
		Tracer:  tr,
		Health:  health,
		WALInfo: func() (any, error) { return st.WALInfo() },
		Runtime: obs.ReadRuntimeStats,
	})

	hs := httptest.NewServer(wire.NewStatusHandlerOpts(broker, wire.StatusOptions{
		Health: health, Recorder: rec,
	}))
	defer hs.Close()

	// Phase 1 — starting: not ready yet, but alive.
	code, snap := readyzSnap(t, hs.URL)
	if code != 503 || snap.Status != "not_ready" {
		t.Fatalf("starting: readyz %d %q, want 503 not_ready", code, snap.Status)
	}
	if snap.Components["server"].Reason != "starting" {
		t.Errorf("starting: server component = %+v", snap.Components["server"])
	}

	// Phase 2 — ready: both components green, and some real traffic so
	// the dumped bundle has non-trivial metrics and a captured trace.
	health.Set("server", obs.StatusReady, "")
	code, snap = readyzSnap(t, hs.URL)
	if code != 200 || snap.Status != "ready" {
		t.Fatalf("steady: readyz %d %q, want 200 ready", code, snap.Status)
	}
	if snap.Components["store_wal"].Status != "ready" {
		t.Errorf("steady: store_wal = %+v", snap.Components["store_wal"])
	}

	if _, err := broker.SubscribeKeywords("alice", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	doc, _ := broker.Publish("<html><body>cats cats cats</body></html>")
	if err := broker.Feedback("alice", doc, filter.Relevant); err != nil {
		t.Fatal(err)
	}
	logger.Info("integration: traffic done")

	// Phase 3 — dump a bundle over HTTP and validate all five sections
	// landed with real content from this run.
	resp, err := http.Post(hs.URL+"/debugz/dump", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("dump: %d %s", resp.StatusCode, body)
	}
	var dumped struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dumped); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(dumped.Path)
	if err != nil {
		t.Fatalf("bundle not on disk: %v", err)
	}
	var bundle struct {
		Reason     string             `json:"reason"`
		Health     obs.HealthSnapshot `json:"health"`
		Goroutines string             `json:"goroutines"`
		Metrics    map[string]any     `json:"metrics"`
		Traces     trace.Snapshot     `json:"traces"`
		Store      map[string]any     `json:"store"`
		Events     []obs.Event        `json:"events"`
	}
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if bundle.Reason != "endpoint" {
		t.Errorf("bundle reason = %q", bundle.Reason)
	}
	if !strings.Contains(bundle.Goroutines, "goroutine") {
		t.Error("bundle goroutine dump is empty")
	}
	if v, ok := bundle.Metrics["mm_pubsub_published_total"].(float64); !ok || v != 1 {
		t.Errorf("bundle metrics published = %v", bundle.Metrics["mm_pubsub_published_total"])
	}
	if len(bundle.Traces.Recent) == 0 {
		t.Error("bundle has no captured traces")
	}
	// The subscribe + feedback above were journaled, so WALInfo reports
	// two committed records.
	if v, ok := bundle.Store["Records"].(float64); !ok || v != 2 {
		t.Errorf("bundle store section = %v, want Records=2", bundle.Store)
	}
	found := false
	for _, ev := range bundle.Events {
		if ev.Msg == "integration: traffic done" {
			found = true
		}
	}
	if !found {
		t.Errorf("bundle event ring misses the logged line: %+v", bundle.Events)
	}
	if !bundle.Health.Ready() {
		t.Errorf("bundle health = %+v, want ready", bundle.Health)
	}

	// Phase 4 — drain: readiness refuses, liveness stays green.
	health.StartDrain()
	code, snap = readyzSnap(t, hs.URL)
	if code != 503 || snap.Status != "draining" || !snap.Draining {
		t.Fatalf("drain: readyz %d %+v, want 503 draining", code, snap)
	}
	live, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != 200 {
		t.Errorf("drain: healthz %d, want 200 (liveness must survive the drain)", live.StatusCode)
	}
}
