// End-to-end integration tests: the full system assembled the way the
// binaries assemble it — broker + persistence + TCP protocol — exercised
// through real sockets and real state directories.
package mmprofile_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mmprofile/internal/pubsub"
	"mmprofile/internal/store"
	"mmprofile/internal/wire"
)

// startStack boots a broker (optionally durable in dir) and a wire server
// on a loopback socket, returning a connected client and a shutdown func.
// maxResident > 0 bounds resident profiles the way mmserver's
// -max-resident-profiles does: restored users boot as evicted stubs and
// hydrate from the store on first use.
func startStack(t *testing.T, dir string, maxResident int) (*wire.Client, func()) {
	t.Helper()
	opts := pubsub.Options{Threshold: 0.2, QueueSize: 64, RetainContent: true}
	var st *store.Store
	if dir != "" {
		var err error
		st, err = store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts.Journal = st
		opts.Hydrator = st
		opts.MaxResident = maxResident
	}
	broker := pubsub.New(opts)
	srv := wire.NewServer(broker, func(string, ...any) {})

	if st != nil {
		profiles, events, err := st.Load()
		if err != nil {
			t.Fatal(err)
		}
		if maxResident > 0 {
			for user, name := range store.RestoredNames(profiles, events) {
				sub, err := broker.SubscribeRestored(user, name, nil)
				if err != nil {
					t.Fatal(err)
				}
				srv.Adopt(user, sub)
			}
		} else {
			learners, err := store.Restore(profiles, events)
			if err != nil {
				t.Fatal(err)
			}
			for user, l := range learners {
				sub, err := broker.SubscribeRestored(user, l.Name(), l)
				if err != nil {
					t.Fatal(err)
				}
				srv.Adopt(user, sub)
			}
		}
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	c, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	shutdown := func() {
		c.Close()
		srv.Close()
		<-done
		if st != nil {
			st.Close()
		}
	}
	return c, shutdown
}

const integPage = "<html><head><title>t</title></head><body>cats and kittens and cat toys</body></html>"

// TestIntegrationLifecycle drives subscribe → publish → watch → feedback →
// profile → fetch over a real socket.
func TestIntegrationLifecycle(t *testing.T) {
	c, shutdown := startStack(t, "", 0)
	defer shutdown()

	if err := c.Subscribe("alice", "", []string{"cats", "kittens"}); err != nil {
		t.Fatal(err)
	}
	doc, delivered, err := c.Publish(integPage)
	if err != nil || delivered != 1 {
		t.Fatalf("publish: %v, delivered %d", err, delivered)
	}
	ds, err := c.Watch("alice", 0, 2*time.Second)
	if err != nil || len(ds) != 1 || ds[0].Doc != doc {
		t.Fatalf("watch: %v %+v", err, ds)
	}
	if err := c.Feedback("alice", doc, true); err != nil {
		t.Fatal(err)
	}
	p, err := c.Profile("alice")
	if err != nil || p.Size < 1 {
		t.Fatalf("profile: %v %+v", err, p)
	}
	content, err := c.Fetch(doc)
	if err != nil || content != integPage {
		t.Fatalf("fetch: %v %q", err, content)
	}
	st, err := c.Stats()
	if err != nil || st.Published != 1 || st.Feedbacks != 1 {
		t.Fatalf("stats: %v %+v", err, st)
	}
}

// TestIntegrationDurability restarts the whole stack and checks the
// adapted profile survives: the same page must be delivered to the
// restored subscriber without resubscribing.
func TestIntegrationDurability(t *testing.T) {
	dir := t.TempDir()
	c, shutdown := startStack(t, dir, 0)
	if err := c.Subscribe("alice", "", []string{"cats", "kittens"}); err != nil {
		t.Fatal(err)
	}
	doc, _, err := c.Publish(integPage)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Feedback("alice", doc, true); err != nil {
		t.Fatal(err)
	}
	before, err := c.Profile("alice")
	if err != nil {
		t.Fatal(err)
	}
	shutdown() // includes closing the store

	c2, shutdown2 := startStack(t, dir, 0)
	defer shutdown2()
	after, err := c2.Profile("alice")
	if err != nil {
		t.Fatal(err)
	}
	if after.Size != before.Size || after.Learner != before.Learner {
		t.Fatalf("profile changed across restart: %+v vs %+v", after, before)
	}
	if _, delivered, err := c2.Publish(integPage); err != nil || delivered != 1 {
		t.Fatalf("restored subscriber missed delivery: %v, %d", err, delivered)
	}
}

// TestIntegrationLazyHydration restarts the stack with a residency bound
// of one: restored users boot evicted, hydrate on first touch over the
// wire, and adapted profiles still survive bit-exact.
func TestIntegrationLazyHydration(t *testing.T) {
	dir := t.TempDir()
	c, shutdown := startStack(t, dir, 0)
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := c.Subscribe(u, "", []string{"cats", "kittens"}); err != nil {
			t.Fatal(err)
		}
	}
	doc, _, err := c.Publish(integPage)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := c.Feedback(u, doc, true); err != nil {
			t.Fatal(err)
		}
	}
	before, err := c.Profile("bob")
	if err != nil {
		t.Fatal(err)
	}
	shutdown()

	c2, shutdown2 := startStack(t, dir, 1)
	defer shutdown2()
	// Evicted stubs are off the match path until first touched.
	if _, delivered, err := c2.Publish(integPage); err != nil || delivered != 0 {
		t.Fatalf("evicted subscribers took deliveries: %v, %d", err, delivered)
	}
	// A profile request hydrates bob from the store.
	after, err := c2.Profile("bob")
	if err != nil {
		t.Fatal(err)
	}
	if after.Size != before.Size || after.Learner != before.Learner {
		t.Fatalf("profile changed across lazy restart: %+v vs %+v", after, before)
	}
	// Hydrated bob is back in the index; the bound keeps others evicted.
	if _, delivered, err := c2.Publish(integPage); err != nil || delivered != 1 {
		t.Fatalf("hydrated subscriber missed delivery: %v, %d", err, delivered)
	}
	// Feedback through the wire hydrates carol (evicting bob) and adapts.
	doc2, _, err := c2.Publish(integPage)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Feedback("carol", doc2, true); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationManyClients hammers one stack from concurrent
// connections mixing subscribes, publishes, polls and feedback.
func TestIntegrationManyClients(t *testing.T) {
	c0, shutdown := startStack(t, "", 0)
	defer shutdown()

	const users = 6
	for i := 0; i < users; i++ {
		if err := c0.Subscribe(fmt.Sprintf("u%d", i), "", []string{"cats"}); err != nil {
			t.Fatal(err)
		}
	}
	addrClient := func() *wire.Client { // each goroutine needs its own conn
		c, err := wire.Dial(dialAddr(t, c0))
		if err != nil {
			t.Error(err)
			return nil
		}
		return c
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := addrClient()
			if c == nil {
				return
			}
			defer c.Close()
			for i := 0; i < 25; i++ {
				if _, _, err := c.Publish(integPage); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := addrClient()
			if c == nil {
				return
			}
			defer c.Close()
			user := fmt.Sprintf("u%d", i)
			judged := 0
			for judged < 10 {
				ds, err := c.Watch(user, 8, time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				if len(ds) == 0 {
					return // publishers done and queue drained
				}
				for _, d := range ds {
					if err := c.Feedback(user, d.Doc, true); err != nil {
						t.Error(err)
						return
					}
					judged++
				}
			}
		}(i)
	}
	wg.Wait()
	st, err := c0.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Published != 100 {
		t.Errorf("published = %d, want 100", st.Published)
	}
	if st.Deliveries == 0 || st.Feedbacks == 0 {
		t.Errorf("no traffic: %+v", st)
	}
}

// dialAddr recovers the server address from an existing client's
// connection (test helper; the stack does not export its listener).
func dialAddr(t *testing.T, c *wire.Client) string {
	t.Helper()
	return c.RemoteAddr()
}
